//! Named-site fault injection for exercising the campaign's
//! crash-safety machinery (journal + resume, panic quarantine,
//! watchdog, retry) from tests and CI.
//!
//! A failpoint is a named call site (`failpoint::fire("measure.rep")`)
//! that normally does nothing. Arming a spec — via `campaign run
//! --failpoints SPEC` or the `SIMBENCH_FAILPOINTS` environment
//! variable — attaches an action to a site: panic with a payload, hang
//! for a duration, return a transient error, or abort the process
//! (simulating a crash between journal records).
//!
//! Disarmed cost: [`fire`] is one relaxed atomic load and a branch —
//! no allocation, no lock, no formatting — so sprinkling sites through
//! measurement code cannot violate the alloc-free steady-state
//! guarantee, and the sites live outside the hot-path-linted dispatch
//! files anyway (failures are injected per repetition, never per
//! instruction).
//!
//! # Spec grammar
//!
//! ```text
//! SPEC   := SITE '=' ACTION (';' SITE '=' ACTION)*
//! ACTION := [SKIP '+'] [N '*'] KIND
//! KIND   := 'panic' ['(' MSG ')']
//!         | 'hang'  '(' MILLIS ')'
//!         | 'err'   ['(' MSG ')']
//!         | 'abort'
//! ```
//!
//! `SKIP+` skips the first SKIP hits of the site; `N*` fires at most N
//! times after the skip window. Both default to "from the first hit"
//! and "every hit". Examples:
//!
//! - `measure.rep=1*panic(injected)` — panic on the first repetition,
//!   run everything after cleanly (one cell quarantines, the rest of
//!   the matrix completes).
//! - `measure.rep=4+hang(60000)` — let four repetitions finish, then
//!   hang each later one for 60 s (watchdog / kill -9 fodder).
//! - `journal.append=2+abort` — crash the process after two journal
//!   records, leaving a prefix for `--resume` to replay.
//!
//! Current sites: `measure.rep` (entry of every measurement attempt),
//! `measure.finish` (after a measurement returns, before its sample is
//! recorded), `journal.append` (before each journal record is
//! written).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Duration;

/// Environment variable consulted by [`arm_from_env`]; same grammar as
/// the `--failpoints` flag.
pub const ENV_VAR: &str = "SIMBENCH_FAILPOINTS";

/// Fast-path gate: false until the first successful [`arm`]. Checked
/// with one relaxed load so disarmed sites cost a branch and nothing
/// else.
static ARMED: AtomicBool = AtomicBool::new(false);

#[derive(Debug, Clone, PartialEq, Eq)]
enum Action {
    Panic(String),
    Hang(u64),
    Err(String),
    Abort,
}

#[derive(Debug)]
struct SiteState {
    /// Hits to let through before firing.
    skip: u64,
    /// Cap on firings after the skip window (`None` = unbounded).
    times: Option<u64>,
    action: Action,
    hits: u64,
    fired: u64,
}

fn registry() -> &'static Mutex<HashMap<String, SiteState>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, SiteState>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock_registry() -> std::sync::MutexGuard<'static, HashMap<String, SiteState>> {
    // A panic is this module's product, not a reason to wedge: recover
    // the registry from poisoning so later sites keep firing.
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arm failpoints from a spec string (see the module docs for the
/// grammar). Merges into any already-armed sites; a site named twice
/// keeps the later action. Errors name the offending clause.
pub fn arm(spec: &str) -> Result<(), String> {
    let mut parsed = Vec::new();
    for clause in spec.split(';') {
        let clause = clause.trim();
        if clause.is_empty() {
            continue;
        }
        let (site, action) = clause
            .split_once('=')
            .ok_or_else(|| format!("failpoint clause {clause:?}: expected SITE=ACTION"))?;
        let site = site.trim();
        if site.is_empty() {
            return Err(format!("failpoint clause {clause:?}: empty site name"));
        }
        let state =
            parse_action(action.trim()).map_err(|e| format!("failpoint clause {clause:?}: {e}"))?;
        parsed.push((site.to_string(), state));
    }
    if parsed.is_empty() {
        return Err("empty failpoint spec".to_string());
    }
    let mut reg = lock_registry();
    for (site, state) in parsed {
        reg.insert(site, state);
    }
    drop(reg);
    ARMED.store(true, Ordering::Relaxed);
    Ok(())
}

/// Arm from [`ENV_VAR`] if it is set and non-empty. Returns whether a
/// spec was armed; a malformed spec is an error, not a silent no-op.
pub fn arm_from_env() -> Result<bool, String> {
    match std::env::var(ENV_VAR) {
        Ok(spec) if !spec.trim().is_empty() => arm(&spec).map(|()| true),
        _ => Ok(false),
    }
}

/// Disarm every site and reset hit counts (test isolation).
pub fn disarm_all() {
    ARMED.store(false, Ordering::Relaxed);
    lock_registry().clear();
}

fn parse_action(s: &str) -> Result<SiteState, String> {
    let mut rest = s;
    let mut skip = 0u64;
    let mut times = None;
    // Leading `SKIP+` then `N*`, both optional. Kind names never start
    // with a digit, so leading digits always belong to a count.
    if let Some((n, after)) = leading_count(rest, '+') {
        skip = n;
        rest = after;
    }
    if let Some((n, after)) = leading_count(rest, '*') {
        times = Some(n);
        rest = after;
    }
    let (kind, arg) = match rest.split_once('(') {
        None => (rest, None),
        Some((kind, tail)) => {
            let arg = tail
                .strip_suffix(')')
                .ok_or_else(|| format!("unclosed argument in {rest:?}"))?;
            (kind, Some(arg))
        }
    };
    let action = match (kind, arg) {
        ("panic", arg) => Action::Panic(arg.unwrap_or("injected panic").to_string()),
        ("hang", Some(ms)) => Action::Hang(
            ms.trim()
                .parse()
                .map_err(|_| format!("hang wants milliseconds, got {ms:?}"))?,
        ),
        ("hang", None) => return Err("hang wants a duration: hang(MILLIS)".to_string()),
        ("err", arg) => Action::Err(arg.unwrap_or("injected transient error").to_string()),
        ("abort", None) => Action::Abort,
        ("abort", Some(_)) => return Err("abort takes no argument".to_string()),
        (other, _) => {
            return Err(format!(
                "unknown kind {other:?} (expected panic/hang/err/abort)"
            ))
        }
    };
    Ok(SiteState {
        skip,
        times,
        action,
        hits: 0,
        fired: 0,
    })
}

/// Parse a leading `<digits><sep>` prefix; `None` when `s` does not
/// start with one.
fn leading_count(s: &str, sep: char) -> Option<(u64, &str)> {
    let digits = s.len() - s.trim_start_matches(|c: char| c.is_ascii_digit()).len();
    if digits == 0 {
        return None;
    }
    let rest = &s[digits..];
    let rest = rest.strip_prefix(sep)?;
    s[..digits].parse().ok().map(|n| (n, rest))
}

/// Hit a failpoint site. Disarmed (the overwhelmingly common state):
/// one relaxed load, one branch, `Ok(())`. Armed with a matching site:
/// the configured action — `panic` unwinds with its payload, `hang`
/// sleeps, `err` returns the message as a transient error, `abort`
/// kills the process without unwinding.
#[inline]
pub fn fire(site: &str) -> Result<(), String> {
    if !ARMED.load(Ordering::Relaxed) {
        return Ok(());
    }
    fire_armed(site)
}

#[cold]
fn fire_armed(site: &str) -> Result<(), String> {
    let action = {
        let mut reg = lock_registry();
        let Some(state) = reg.get_mut(site) else {
            return Ok(());
        };
        state.hits += 1;
        if state.hits <= state.skip {
            return Ok(());
        }
        if state.times.is_some_and(|t| state.fired >= t) {
            return Ok(());
        }
        state.fired += 1;
        state.action.clone()
        // The lock drops here: a hang must never wedge other sites.
    };
    simbench_obs::warn!("[campaign] failpoint {site}: firing {action:?}");
    match action {
        Action::Panic(msg) => panic!("{msg}"),
        Action::Hang(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            Ok(())
        }
        Action::Err(msg) => Err(msg),
        Action::Abort => {
            // Simulates a hard crash (power loss / kill -9): no unwind,
            // no destructors, no flush of buffered state.
            eprintln!("failpoint {site}: aborting process");
            std::process::abort();
        }
    }
}

/// The registry is process-global, so in-process tests that arm it
/// (here, in `runner`, wherever) must serialize on this guard and
/// disarm on entry; the guard disarms again on drop.
#[cfg(test)]
pub(crate) struct TestGuard {
    _serialize: std::sync::MutexGuard<'static, ()>,
}

#[cfg(test)]
impl Drop for TestGuard {
    fn drop(&mut self) {
        disarm_all();
    }
}

#[cfg(test)]
pub(crate) fn test_guard() -> TestGuard {
    static GUARD: Mutex<()> = Mutex::new(());
    let g = GUARD.lock().unwrap_or_else(PoisonError::into_inner);
    disarm_all();
    TestGuard { _serialize: g }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guard() -> TestGuard {
        test_guard()
    }

    #[test]
    fn disarmed_sites_are_no_ops() {
        let _g = guard();
        assert_eq!(fire("measure.rep"), Ok(()));
        assert_eq!(fire("anything.at.all"), Ok(()));
    }

    #[test]
    fn err_kind_fires_with_skip_and_count() {
        let _g = guard();
        arm("site.a=1+2*err(flaky)").unwrap();
        assert_eq!(fire("site.a"), Ok(()), "first hit is skipped");
        assert_eq!(fire("site.a"), Err("flaky".to_string()));
        assert_eq!(fire("site.a"), Err("flaky".to_string()));
        assert_eq!(fire("site.a"), Ok(()), "count exhausted");
        assert_eq!(fire("site.b"), Ok(()), "unarmed sites stay quiet");
        disarm_all();
        assert_eq!(fire("site.a"), Ok(()));
    }

    #[test]
    fn panic_kind_unwinds_with_its_payload() {
        let _g = guard();
        arm("site.p=panic(boom)").unwrap();
        let payload = std::panic::catch_unwind(|| fire("site.p")).unwrap_err();
        assert_eq!(payload.downcast_ref::<String>().unwrap(), "boom");
        disarm_all();
    }

    #[test]
    fn hang_kind_sleeps_then_succeeds() {
        let _g = guard();
        arm("site.h=hang(10)").unwrap();
        let t0 = std::time::Instant::now();
        assert_eq!(fire("site.h"), Ok(()));
        assert!(t0.elapsed() >= Duration::from_millis(10));
        disarm_all();
    }

    #[test]
    fn defaults_and_multi_clause_specs_parse() {
        let _g = guard();
        arm("a=panic; b=err ; c=3*err(x)").unwrap();
        let payload = std::panic::catch_unwind(|| fire("a")).unwrap_err();
        assert_eq!(payload.downcast_ref::<String>().unwrap(), "injected panic");
        assert_eq!(fire("b"), Err("injected transient error".to_string()));
        assert_eq!(fire("c"), Err("x".to_string()));
        disarm_all();
    }

    #[test]
    fn malformed_specs_are_errors() {
        let _g = guard();
        for bad in [
            "",
            "   ",
            "no-equals",
            "=panic",
            "s=hang",
            "s=hang(soon)",
            "s=abort(now)",
            "s=explode",
            "s=panic(unclosed",
            "s=5panic",
        ] {
            assert!(arm(bad).is_err(), "{bad:?} should not parse");
        }
        assert!(
            !ARMED.load(Ordering::Relaxed),
            "failed arms must not half-arm"
        );
    }
}

//! Write-ahead cell journal: crash-safe progress for long campaigns.
//!
//! `campaign run --journal DIR` appends NDJSON records to
//! `DIR/journal.ndjson` as the campaign executes — one fsync'd line
//! per completed repetition, plus one line carrying the full persisted
//! cell record whenever a cell finishes. After a crash (panic storm,
//! OOM-kill, power loss, `kill -9`), `campaign run --resume DIR`
//! replays the journal, reconstructs every cell that finished cleanly,
//! and measures only the remainder. Event counters are architectural
//! and deterministic, so the resumed result is counter-exact against
//! an uninterrupted run — the existing `campaign compare --counters`
//! gate proves recovery changed nothing.
//!
//! # Record layout (one JSON object per line)
//!
//! ```text
//! {"record": "meta", "schema": "simbench-journal/v1", "name": ...,
//!  "scale": N, "reps": N, ["precision": {...},] ["shard": {...},]
//!  "cells": N}
//! {"record": "rep", "cell": i, "rep": r, "attempt": a, "outcome": "ok"}
//! {"record": "cell", "index": i, "cell": { ...full cell record... }}
//! ```
//!
//! The meta line is written first and validated on resume: resuming a
//! journal against a different spec (name, scale, reps, precision,
//! shard, cell count) is an error, never a silent mismeasurement. The
//! `cell` payload is byte-identical to the cell's object in the final
//! result file (same writer), so a journaled cell replays exactly.
//!
//! # Crash tolerance
//!
//! Every record is flushed with `fsync` before the runner moves on, so
//! the journal is a prefix of the truth at any kill point. A torn
//! final line (the process died mid-write) is detected and discarded
//! on replay; a torn or missing record merely re-measures that cell.
//! Records after the first are strictly append-only, and a resumed run
//! appends to the same file — re-finished cells write newer `cell`
//! records, and the last record for an index wins.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

use crate::failpoint;
use crate::json::{self, Value};
use crate::result::{cell_json, parse_cell, CellResult};
use crate::spec::{CampaignSpec, Shard};

/// Schema identifier on the journal's meta record.
pub const JOURNAL_SCHEMA: &str = "simbench-journal/v1";

/// File name inside the journal directory.
pub const JOURNAL_FILE: &str = "journal.ndjson";

/// An open write-ahead journal. Append methods never panic and never
/// abort the campaign: a journal write failure is reported on stderr
/// and the run continues (losing durability, not results).
pub struct Journal {
    file: Mutex<File>,
    dir: PathBuf,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Journal({})", self.dir.display())
    }
}

impl Journal {
    /// Start a fresh journal for a campaign: create `dir`, truncate
    /// `dir/journal.ndjson` and write the fsync'd meta record.
    pub fn create(
        dir: impl AsRef<Path>,
        spec: &CampaignSpec,
        shard: Option<Shard>,
    ) -> std::io::Result<Journal> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let file = File::create(dir.join(JOURNAL_FILE))?;
        let journal = Journal {
            file: Mutex::new(file),
            dir,
        };
        journal.append_io(&meta_record(spec, shard))?;
        Ok(journal)
    }

    /// Reopen an existing journal for appending (resume). The caller
    /// replays and validates it first ([`replay`]); nothing new is
    /// written until the resumed run completes repetitions.
    pub fn resume(dir: impl AsRef<Path>) -> std::io::Result<Journal> {
        let dir = dir.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .append(true)
            .open(dir.join(JOURNAL_FILE))?;
        Ok(Journal {
            file: Mutex::new(file),
            dir,
        })
    }

    /// The journal directory (echoed into the campaign result).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Record one completed repetition execution (fsync'd).
    pub fn record_rep(&self, cell_index: usize, rep: u32, attempt: u32, outcome: &str) {
        let line = format!(
            "{{\"record\": \"rep\", \"cell\": {cell_index}, \"rep\": {rep}, \
             \"attempt\": {attempt}, \"outcome\": {}}}",
            json::quote(outcome)
        );
        self.append(&line);
    }

    /// Record one finished cell with its full result payload (fsync'd).
    /// Replay reconstructs the cell from exactly these bytes.
    pub fn record_cell(&self, cell_index: usize, cell: &CellResult) {
        let line = format!(
            "{{\"record\": \"cell\", \"index\": {cell_index}, \"cell\": {}}}",
            cell_json(cell)
        );
        self.append(&line);
    }

    /// Append one line, warn-and-continue on failure.
    fn append(&self, line: &str) {
        if let Err(e) = self.append_io(line) {
            simbench_obs::warn!(
                "[campaign] journal append failed ({}): {e}",
                self.dir.display()
            );
        }
    }

    fn append_io(&self, line: &str) -> std::io::Result<()> {
        if let Err(e) = failpoint::fire("journal.append") {
            return Err(std::io::Error::other(e));
        }
        let mut file = self.file.lock().unwrap_or_else(PoisonError::into_inner);
        // One buffer, one write: minimizes (but cannot eliminate) the
        // torn-record window replay tolerates.
        let mut buf = String::with_capacity(line.len() + 1);
        buf.push_str(line);
        buf.push('\n');
        file.write_all(buf.as_bytes())?;
        file.sync_data()
    }
}

fn meta_record(spec: &CampaignSpec, shard: Option<Shard>) -> String {
    let mut out = format!(
        "{{\"record\": \"meta\", \"schema\": {}, \"name\": {}, \"scale\": {}, \"reps\": {}",
        json::quote(JOURNAL_SCHEMA),
        json::quote(&spec.name),
        spec.scale,
        spec.reps.max(1),
    );
    if let Some(p) = spec.precision {
        out.push_str(&format!(
            ", \"precision\": {{\"target_rci\": {}, \"min_reps\": {}, \"max_reps\": {}}}",
            json::num(p.target_rci),
            p.min_reps,
            p.max_reps
        ));
    }
    if let Some(s) = shard {
        out.push_str(&format!(
            ", \"shard\": {{\"index\": {}, \"count\": {}}}",
            s.index, s.count
        ));
    }
    out.push_str(&format!(", \"cells\": {}}}", spec.cells().len()));
    out
}

/// What a journal replay reconstructed.
#[derive(Debug, Default)]
pub struct Replay {
    /// Finished cells by spec index, ready to skip on resume. Only
    /// cleanly-finished cells (`Ok` / not-on-ISA) replay: a
    /// quarantined or timed-out record means the cell gets a fresh
    /// chance when the campaign is resumed.
    pub cells: Vec<(usize, CellResult)>,
    /// Broken cells (quarantined / timed out / failed) found in the
    /// journal and scheduled for re-measurement.
    pub broken: usize,
    /// Repetition records seen (progress reporting).
    pub reps: usize,
    /// A torn final record (crash mid-write) was detected and
    /// discarded.
    pub torn: bool,
}

/// Replay `DIR/journal.ndjson` against the spec the resumed run will
/// execute. Validates the meta record (same name, scale, reps,
/// precision, shard and cell count — resuming a different spec is an
/// error), tolerates a torn final record, and returns the finished
/// cells to skip.
pub fn replay(
    dir: impl AsRef<Path>,
    spec: &CampaignSpec,
    shard: Option<Shard>,
) -> Result<Replay, String> {
    let path = dir.as_ref().join(JOURNAL_FILE);
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let keys = spec.cells();
    let mut replay = Replay::default();
    // Last record per index wins: a resumed run appends newer records
    // for re-measured cells.
    let mut finished: Vec<Option<CellResult>> = vec![None; keys.len()];
    let lines: Vec<&str> = text.lines().collect();
    let mut saw_meta = false;
    for (lineno, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = match json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                if lineno + 1 == lines.len() {
                    // The process died mid-write; the fsync'd prefix
                    // before this record is still complete and valid.
                    replay.torn = true;
                    continue;
                }
                return Err(format!("{}:{}: {e}", path.display(), lineno + 1));
            }
        };
        let record = v.get("record").and_then(Value::as_str).unwrap_or("");
        if !saw_meta {
            if record != "meta" {
                return Err(format!(
                    "{}: first record is {record:?}, expected \"meta\"",
                    path.display()
                ));
            }
            check_meta(&v, spec, shard).map_err(|e| format!("{}: {e}", path.display()))?;
            saw_meta = true;
            continue;
        }
        match record {
            "rep" => replay.reps += 1,
            "cell" => {
                let index = v.get("index").and_then(Value::as_u64).ok_or_else(|| {
                    format!(
                        "{}:{}: cell record without index",
                        path.display(),
                        lineno + 1
                    )
                })? as usize;
                if index >= keys.len() {
                    return Err(format!(
                        "{}:{}: cell index {index} out of range (spec has {})",
                        path.display(),
                        lineno + 1,
                        keys.len()
                    ));
                }
                let cv = v.get("cell").ok_or_else(|| {
                    format!(
                        "{}:{}: cell record without payload",
                        path.display(),
                        lineno + 1
                    )
                })?;
                let cell = parse_cell(cv)
                    .map_err(|e| format!("{}:{}: {e}", path.display(), lineno + 1))?;
                let key = &keys[index];
                if cell.guest != key.guest.isa_name()
                    || cell.engine != key.engine.id()
                    || cell.workload != key.workload.id()
                {
                    return Err(format!(
                        "{}:{}: cell {index} is {}/{} {} in the journal but {}/{} {} in the spec",
                        path.display(),
                        lineno + 1,
                        cell.guest,
                        cell.engine,
                        cell.workload,
                        key.guest.isa_name(),
                        key.engine.id(),
                        key.workload.id()
                    ));
                }
                finished[index] = Some(cell);
            }
            "meta" => {
                return Err(format!(
                    "{}:{}: duplicate meta record",
                    path.display(),
                    lineno + 1
                ))
            }
            other => {
                // Unknown record kinds from a newer writer are skipped,
                // not fatal: the journal only ever gains record types.
                simbench_obs::debug!("[campaign] journal: skipping {other:?} record");
            }
        }
    }
    if !saw_meta {
        return Err(format!(
            "{}: no meta record (empty or fully torn journal)",
            path.display()
        ));
    }
    for (index, cell) in finished.into_iter().enumerate() {
        let Some(cell) = cell else { continue };
        if cell.status.is_broken() {
            replay.broken += 1;
            continue;
        }
        replay.cells.push((index, cell));
    }
    Ok(replay)
}

fn check_meta(v: &Value, spec: &CampaignSpec, shard: Option<Shard>) -> Result<(), String> {
    let schema = v.get("schema").and_then(Value::as_str).unwrap_or("");
    if schema != JOURNAL_SCHEMA {
        return Err(format!(
            "unsupported journal schema {schema:?} (expected {JOURNAL_SCHEMA:?})"
        ));
    }
    let mismatch = |what: &str, journal: String, ours: String| {
        Err(format!(
            "journal was written for a different campaign: {what} is {journal} in the journal \
             but {ours} here (resuming would mismeasure; use a fresh --journal directory)"
        ))
    };
    let name = v.get("name").and_then(Value::as_str).unwrap_or("");
    if name != spec.name {
        return mismatch("name", format!("{name:?}"), format!("{:?}", spec.name));
    }
    let scale = v.get("scale").and_then(Value::as_u64).unwrap_or(0);
    if scale != spec.scale {
        return mismatch("scale", scale.to_string(), spec.scale.to_string());
    }
    let reps = v.get("reps").and_then(Value::as_u64).unwrap_or(0);
    if reps != u64::from(spec.reps.max(1)) {
        return mismatch("reps", reps.to_string(), spec.reps.max(1).to_string());
    }
    let cells = v.get("cells").and_then(Value::as_u64).unwrap_or(0);
    if cells != spec.cells().len() as u64 {
        return mismatch(
            "cell count",
            cells.to_string(),
            spec.cells().len().to_string(),
        );
    }
    let jp = v.get("precision").map(|p| {
        (
            p.get("target_rci").and_then(Value::as_f64).unwrap_or(-1.0),
            p.get("min_reps").and_then(Value::as_u64).unwrap_or(0),
            p.get("max_reps").and_then(Value::as_u64).unwrap_or(0),
        )
    });
    let sp = spec
        .precision
        .map(|p| (p.target_rci, u64::from(p.min_reps), u64::from(p.max_reps)));
    if jp != sp {
        return mismatch("precision", format!("{jp:?}"), format!("{sp:?}"));
    }
    let jshard = v.get("shard").map(|s| {
        (
            s.get("index").and_then(Value::as_u64).unwrap_or(0),
            s.get("count").and_then(Value::as_u64).unwrap_or(0),
        )
    });
    let oshard = shard.map(|s| (u64::from(s.index), u64::from(s.count)));
    if jshard != oshard {
        return mismatch("shard", format!("{jshard:?}"), format!("{oshard:?}"));
    }
    Ok(())
}

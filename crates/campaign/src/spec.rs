//! Declarative campaign specifications and their expansion into jobs.
//!
//! A [`CampaignSpec`] names the measurement matrix — guests × engines ×
//! workloads, at one iteration scale, with R repetitions — and
//! [`CampaignSpec::expand`] flattens it into independent [`Job`]s for
//! the runner. Expansion order is deterministic, so job ids and cell
//! order are stable across runs and machines.

use std::time::Duration;

use simbench_apps::App;
use simbench_core::engine::RunLimits;
use simbench_core::events::Counters;
use simbench_suite::Benchmark;

use crate::measure::{Config, EngineKind, Guest};

/// One workload axis entry: a SimBench micro-benchmark or a SPEC-like
/// application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// A suite micro-benchmark.
    Suite(Benchmark),
    /// A synthetic application.
    App(App),
}

impl Workload {
    /// Display name (Fig 3 / Fig 7 row names for suite benchmarks).
    pub fn name(self) -> &'static str {
        match self {
            Workload::Suite(b) => b.name(),
            Workload::App(a) => a.name(),
        }
    }

    /// Stable id used in persisted results: `suite:<name>` / `app:<name>`.
    pub fn id(self) -> String {
        match self {
            Workload::Suite(b) => format!("suite:{}", b.name()),
            Workload::App(a) => format!("app:{}", a.name()),
        }
    }

    /// Inverse of [`Workload::id`].
    pub fn by_id(id: &str) -> Option<Workload> {
        if let Some(name) = id.strip_prefix("suite:") {
            return Benchmark::ALL
                .iter()
                .copied()
                .find(|b| b.name() == name)
                .map(Workload::Suite);
        }
        if let Some(name) = id.strip_prefix("app:") {
            return App::ALL
                .iter()
                .copied()
                .find(|a| a.name() == name)
                .map(Workload::App);
        }
        None
    }

    /// Whether this workload exists on the guest architecture.
    pub fn supported_on(self, guest: Guest) -> bool {
        match self {
            Workload::Suite(b) => b.supported_on(guest.isa_name()),
            Workload::App(_) => true,
        }
    }

    /// Benchmark category for suite workloads (`None` for apps).
    pub fn category(self) -> Option<&'static str> {
        match self {
            Workload::Suite(b) => Some(b.category().name()),
            Workload::App(_) => None,
        }
    }

    /// Count of the workload's *tested operation* in an event profile —
    /// the numerator of Fig 3's operation density. Apps have no single
    /// tested operation.
    pub fn tested_ops(self, counters: &Counters) -> Option<u64> {
        match self {
            Workload::Suite(b) => Some(b.tested_ops(counters)),
            Workload::App(_) => None,
        }
    }
}

/// The declarative description of one measurement campaign.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Campaign name, recorded in the persisted result.
    pub name: String,
    /// Guest architectures to measure.
    pub guests: Vec<Guest>,
    /// Engines (including DBT version profiles) to measure.
    pub engines: Vec<EngineKind>,
    /// Workloads to measure.
    pub workloads: Vec<Workload>,
    /// Iteration divisor applied to the paper's counts.
    pub scale: u64,
    /// Repetitions per cell.
    pub reps: u32,
    /// Per-run wall-clock safety limit in seconds (`None` = unlimited).
    pub wall_limit_secs: Option<u64>,
}

impl CampaignSpec {
    /// The paper's Fig 7 matrix: all suite benchmarks × the five engine
    /// columns × both guests.
    pub fn full_matrix(scale: u64) -> Self {
        CampaignSpec {
            name: "full-matrix".to_string(),
            guests: Guest::ALL.to_vec(),
            engines: EngineKind::fig7_columns().to_vec(),
            workloads: Benchmark::ALL
                .iter()
                .copied()
                .map(Workload::Suite)
                .collect(),
            scale,
            reps: 1,
            wall_limit_secs: Some(120),
        }
    }

    /// The version-sweep matrix behind Figs 2, 6 and 8: every DBT
    /// version profile on the armlet guest.
    pub fn version_sweep(scale: u64, workloads: Vec<Workload>) -> Self {
        CampaignSpec {
            name: "version-sweep".to_string(),
            guests: vec![Guest::Armlet],
            engines: EngineKind::all_dbt_versions(),
            workloads,
            scale,
            reps: 1,
            wall_limit_secs: Some(120),
        }
    }

    /// All nine applications as workloads.
    pub fn app_workloads() -> Vec<Workload> {
        App::ALL.iter().copied().map(Workload::App).collect()
    }

    /// All eighteen suite benchmarks as workloads.
    pub fn suite_workloads() -> Vec<Workload> {
        Benchmark::ALL
            .iter()
            .copied()
            .map(Workload::Suite)
            .collect()
    }

    /// The measurement [`Config`] used for every job of this spec.
    pub fn config(&self) -> Config {
        Config {
            scale: self.scale,
            limits: RunLimits {
                max_insns: u64::MAX,
                wall_limit: self.wall_limit_secs.map(Duration::from_secs),
            },
            jobs: 1,
            reps: self.reps,
        }
    }

    /// The distinct cells of the matrix in deterministic order
    /// (guest-major, then workload, then engine), with unsupported
    /// guest/workload pairs retained so renderers can show `-`.
    pub fn cells(&self) -> Vec<CellKey> {
        let mut cells = Vec::new();
        for &guest in &self.guests {
            for &workload in &self.workloads {
                for &engine in &self.engines {
                    cells.push(CellKey {
                        guest,
                        engine,
                        workload,
                    });
                }
            }
        }
        cells
    }

    /// Flatten into independent jobs: one per supported cell and
    /// repetition. `cell_index` points back into [`CampaignSpec::cells`].
    pub fn expand(&self) -> Vec<Job> {
        let mut jobs = Vec::new();
        for (cell_index, key) in self.cells().into_iter().enumerate() {
            if !key.workload.supported_on(key.guest) {
                continue;
            }
            for rep in 0..self.reps.max(1) {
                jobs.push(Job {
                    cell_index,
                    rep,
                    key,
                });
            }
        }
        jobs
    }
}

/// Identity of one matrix cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellKey {
    /// Guest architecture.
    pub guest: Guest,
    /// Engine.
    pub engine: EngineKind,
    /// Workload.
    pub workload: Workload,
}

/// One unit of work for the runner: a single measurement of one cell.
#[derive(Debug, Clone, Copy)]
pub struct Job {
    /// Index into [`CampaignSpec::cells`].
    pub cell_index: usize,
    /// Repetition number, `0..reps`.
    pub rep: u32,
    /// The cell to measure.
    pub key: CellKey,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_ids_roundtrip() {
        for b in Benchmark::ALL {
            let w = Workload::Suite(b);
            assert_eq!(Workload::by_id(&w.id()), Some(w));
        }
        for a in App::ALL {
            let w = Workload::App(a);
            assert_eq!(Workload::by_id(&w.id()), Some(w));
        }
        assert_eq!(Workload::by_id("suite:No Such Bench"), None);
        assert_eq!(Workload::by_id("System Call"), None);
    }

    #[test]
    fn tested_ops_follow_the_benchmark_counter() {
        let c = Counters {
            syscalls: 7,
            mem_reads: 3,
            mem_writes: 4,
            ..Default::default()
        };
        assert_eq!(Workload::Suite(Benchmark::Syscall).tested_ops(&c), Some(7));
        assert_eq!(Workload::Suite(Benchmark::MemHot).tested_ops(&c), Some(7));
        assert_eq!(Workload::App(App::Bzip2Like).tested_ops(&c), None);
    }

    #[test]
    fn full_matrix_shape() {
        let spec = CampaignSpec::full_matrix(20_000);
        // 2 guests × 18 benchmarks × 5 engines.
        assert_eq!(spec.cells().len(), 180);
        // Nonprivileged Access is absent on petix: 5 engines × 1 rep fewer.
        assert_eq!(spec.expand().len(), 175);
    }

    #[test]
    fn reps_multiply_jobs_not_cells() {
        let mut spec = CampaignSpec::full_matrix(20_000);
        spec.reps = 3;
        assert_eq!(spec.cells().len(), 180);
        assert_eq!(spec.expand().len(), 175 * 3);
    }

    #[test]
    fn expansion_is_deterministic() {
        let spec = CampaignSpec::version_sweep(20_000, CampaignSpec::app_workloads());
        let a: Vec<(usize, u32)> = spec
            .expand()
            .iter()
            .map(|j| (j.cell_index, j.rep))
            .collect();
        let b: Vec<(usize, u32)> = spec
            .expand()
            .iter()
            .map(|j| (j.cell_index, j.rep))
            .collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 20 * 9);
    }

    #[test]
    fn version_sweep_uses_all_versions() {
        let spec = CampaignSpec::version_sweep(1000, CampaignSpec::suite_workloads());
        assert_eq!(spec.engines.len(), 20);
        assert!(spec.engines.iter().all(|e| matches!(e, EngineKind::Dbt(_))));
    }
}

//! Declarative campaign specifications and their expansion into jobs.
//!
//! A [`CampaignSpec`] names the measurement matrix — guests × engines ×
//! workloads, at one iteration scale, with R repetitions — and
//! [`CampaignSpec::expand`] flattens it into independent [`Job`]s for
//! the runner. Expansion order is deterministic, so job ids and cell
//! order are stable across runs and machines.

use std::time::Duration;

use simbench_apps::App;
use simbench_core::engine::RunLimits;
use simbench_core::events::Counters;
use simbench_suite::Benchmark;

use crate::measure::{Config, EngineKind, Guest};

/// One workload axis entry: a SimBench micro-benchmark or a SPEC-like
/// application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// A suite micro-benchmark.
    Suite(Benchmark),
    /// A synthetic application.
    App(App),
}

impl Workload {
    /// Display name (Fig 3 / Fig 7 row names for suite benchmarks).
    pub fn name(self) -> &'static str {
        match self {
            Workload::Suite(b) => b.name(),
            Workload::App(a) => a.name(),
        }
    }

    /// Stable id used in persisted results: `suite:<name>` / `app:<name>`.
    pub fn id(self) -> String {
        match self {
            Workload::Suite(b) => format!("suite:{}", b.name()),
            Workload::App(a) => format!("app:{}", a.name()),
        }
    }

    /// Inverse of [`Workload::id`].
    pub fn by_id(id: &str) -> Option<Workload> {
        if let Some(name) = id.strip_prefix("suite:") {
            return Benchmark::ALL
                .iter()
                .copied()
                .find(|b| b.name() == name)
                .map(Workload::Suite);
        }
        if let Some(name) = id.strip_prefix("app:") {
            return App::ALL
                .iter()
                .copied()
                .find(|a| a.name() == name)
                .map(Workload::App);
        }
        None
    }

    /// Whether this workload exists on the guest architecture.
    pub fn supported_on(self, guest: Guest) -> bool {
        match self {
            Workload::Suite(b) => b.supported_on(guest.isa_name()),
            Workload::App(_) => true,
        }
    }

    /// Benchmark category for suite workloads (`None` for apps).
    pub fn category(self) -> Option<&'static str> {
        match self {
            Workload::Suite(b) => Some(b.category().name()),
            Workload::App(_) => None,
        }
    }

    /// Count of the workload's *tested operation* in an event profile —
    /// the numerator of Fig 3's operation density. Apps have no single
    /// tested operation.
    pub fn tested_ops(self, counters: &Counters) -> Option<u64> {
        match self {
            Workload::Suite(b) => Some(b.tested_ops(counters)),
            Workload::App(_) => None,
        }
    }
}

/// One slice of a campaign matrix for process-level scale-out: shard
/// `index` of `count` (1-based, written `index/count` on the CLI).
///
/// Sharding is *cell-complete*: a cell and all its repetitions land in
/// exactly one shard, so per-cell statistics and event profiles are
/// computed from complete repetition sets and a merged campaign is
/// counter-identical to an unsharded run. Assignment is deterministic —
/// cell `i` of the spec's cell order belongs to shard
/// `(i % count) + 1` — so any machine can compute its slice from the
/// spec alone, with no coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// 1-based shard index, `1..=count`.
    pub index: u32,
    /// Total number of shards.
    pub count: u32,
}

impl Shard {
    /// Build a shard, validating `1 <= index <= count`.
    pub fn new(index: u32, count: u32) -> Result<Shard, String> {
        if count == 0 {
            return Err("shard count must be at least 1".to_string());
        }
        if index == 0 || index > count {
            return Err(format!(
                "shard index {index} out of range 1..={count} (shards are 1-based)"
            ));
        }
        Ok(Shard { index, count })
    }

    /// Parse the CLI form `I/N` (e.g. `2/4`).
    pub fn parse(s: &str) -> Result<Shard, String> {
        let (i, n) = s
            .split_once('/')
            .ok_or_else(|| format!("shard {s:?} is not of the form I/N (e.g. 2/4)"))?;
        let index: u32 = i
            .trim()
            .parse()
            .map_err(|_| format!("shard index {i:?} is not an integer"))?;
        let count: u32 = n
            .trim()
            .parse()
            .map_err(|_| format!("shard count {n:?} is not an integer"))?;
        Shard::new(index, count)
    }

    /// The 1-based index of the shard owning the cell at `cell_index`
    /// of the spec's deterministic cell order, for a given shard count.
    /// Round-robin by cell, so neighbouring (similar-cost) cells spread
    /// across shards. This is the single source of the assignment rule:
    /// both shard execution and merge validation go through it.
    pub fn owner_index(cell_index: usize, count: u32) -> u32 {
        (cell_index % count as usize) as u32 + 1
    }

    /// Whether this shard owns the cell at `cell_index`.
    pub fn owns(&self, cell_index: usize) -> bool {
        Shard::owner_index(cell_index, self.count) == self.index
    }
}

impl std::fmt::Display for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Adaptive repetition target: a cell keeps measuring until the
/// relative 95% CI half-width of its timings (`ci95 / median`, see
/// [`crate::stats::Stats::rel_ci95`]) drops to `target_rci` or below,
/// bounded by `min_reps`/`max_reps`. The runner launches `min_reps`
/// repetitions up front, then re-enqueues one repetition at a time
/// until the cell converges or hits the bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionTarget {
    /// Relative CI half-width to reach, e.g. 0.1 for ±10% of the
    /// median. Must be a positive finite fraction.
    pub target_rci: f64,
    /// Repetitions always run before convergence is evaluated. At
    /// least 2: one sample has no measurable spread, so "converged at
    /// one rep" would always be a fabrication.
    pub min_reps: u32,
    /// Hard repetition ceiling for cells that never converge.
    pub max_reps: u32,
}

impl PrecisionTarget {
    /// Build a target, validating `target_rci > 0` (finite) and
    /// `2 <= min_reps <= max_reps`.
    pub fn new(target_rci: f64, min_reps: u32, max_reps: u32) -> Result<PrecisionTarget, String> {
        if !(target_rci > 0.0 && target_rci.is_finite()) {
            return Err(format!(
                "precision target must be a positive finite fraction, got {target_rci}"
            ));
        }
        if min_reps < 2 {
            return Err(format!(
                "min-reps must be at least 2 (a single repetition has no \
                 measurable spread to converge on), got {min_reps}"
            ));
        }
        if max_reps < min_reps {
            return Err(format!(
                "max-reps ({max_reps}) must be at least min-reps ({min_reps})"
            ));
        }
        Ok(PrecisionTarget {
            target_rci,
            min_reps,
            max_reps,
        })
    }
}

impl std::fmt::Display for PrecisionTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rci {} in {}..={} reps",
            self.target_rci, self.min_reps, self.max_reps
        )
    }
}

/// The declarative description of one measurement campaign.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Campaign name, recorded in the persisted result.
    pub name: String,
    /// Guest architectures to measure.
    pub guests: Vec<Guest>,
    /// Engines (including DBT version profiles) to measure.
    pub engines: Vec<EngineKind>,
    /// Workloads to measure.
    pub workloads: Vec<Workload>,
    /// Iteration divisor applied to the paper's counts.
    pub scale: u64,
    /// Repetitions per cell when `precision` is `None` (fixed mode).
    pub reps: u32,
    /// Adaptive repetition target. When set, `reps` is ignored: every
    /// cell starts at `min_reps` repetitions and keeps measuring until
    /// its relative CI half-width reaches `target_rci` (or `max_reps`).
    pub precision: Option<PrecisionTarget>,
    /// Per-run wall-clock safety limit (`None` = unlimited). Stored as
    /// a full [`Duration`] so sub-second limits round-trip losslessly.
    pub wall_limit: Option<Duration>,
}

impl CampaignSpec {
    /// The paper's Fig 7 matrix: all suite benchmarks × the five engine
    /// columns × both guests.
    pub fn full_matrix(scale: u64) -> Self {
        CampaignSpec {
            name: "full-matrix".to_string(),
            guests: Guest::ALL.to_vec(),
            engines: EngineKind::fig7_columns().to_vec(),
            workloads: Benchmark::ALL
                .iter()
                .copied()
                .map(Workload::Suite)
                .collect(),
            scale,
            reps: 1,
            precision: None,
            wall_limit: Some(Duration::from_secs(120)),
        }
    }

    /// The version-sweep matrix behind Figs 2, 6 and 8: every DBT
    /// version profile on the armlet guest.
    pub fn version_sweep(scale: u64, workloads: Vec<Workload>) -> Self {
        CampaignSpec {
            name: "version-sweep".to_string(),
            guests: vec![Guest::Armlet],
            engines: EngineKind::all_dbt_versions(),
            workloads,
            scale,
            reps: 1,
            precision: None,
            wall_limit: Some(Duration::from_secs(120)),
        }
    }

    /// All nine applications as workloads.
    pub fn app_workloads() -> Vec<Workload> {
        App::ALL.iter().copied().map(Workload::App).collect()
    }

    /// All eighteen suite benchmarks as workloads.
    pub fn suite_workloads() -> Vec<Workload> {
        Benchmark::ALL
            .iter()
            .copied()
            .map(Workload::Suite)
            .collect()
    }

    /// The measurement [`Config`] used for every job of this spec.
    pub fn config(&self) -> Config {
        Config {
            scale: self.scale,
            limits: RunLimits {
                max_insns: u64::MAX,
                wall_limit: self.wall_limit,
            },
            jobs: 1,
            reps: self.reps,
        }
    }

    /// The distinct cells of the matrix in deterministic order
    /// (guest-major, then workload, then engine), with unsupported
    /// guest/workload pairs retained so renderers can show `-`.
    pub fn cells(&self) -> Vec<CellKey> {
        let mut cells = Vec::new();
        for &guest in &self.guests {
            for &workload in &self.workloads {
                for &engine in &self.engines {
                    cells.push(CellKey {
                        guest,
                        engine,
                        workload,
                    });
                }
            }
        }
        cells
    }

    /// Repetitions launched per cell before any completion feedback:
    /// the fixed `reps` count, or `min_reps` in adaptive mode (the
    /// runner re-enqueues further repetitions one at a time as cells
    /// fail to converge).
    pub fn initial_reps(&self) -> u32 {
        match self.precision {
            Some(p) => p.min_reps,
            None => self.reps.max(1),
        }
    }

    /// Flatten into independent jobs: one per supported cell and
    /// up-front repetition ([`CampaignSpec::initial_reps`]).
    /// `cell_index` points back into [`CampaignSpec::cells`].
    pub fn expand(&self) -> Vec<Job> {
        self.expand_shard(None)
    }

    /// [`CampaignSpec::expand`] restricted to one shard's slice of the
    /// matrix. `None` expands the whole matrix. Shards partition cells,
    /// never repetitions: every job of a cell lands in the cell's
    /// owning shard, so merged results are counter-identical to an
    /// unsharded run.
    pub fn expand_shard(&self, shard: Option<Shard>) -> Vec<Job> {
        let mut jobs = Vec::new();
        for (cell_index, key) in self.cells().into_iter().enumerate() {
            if !key.workload.supported_on(key.guest) {
                continue;
            }
            if let Some(s) = shard {
                if !s.owns(cell_index) {
                    continue;
                }
            }
            for rep in 0..self.initial_reps() {
                jobs.push(Job {
                    cell_index,
                    rep,
                    key,
                });
            }
        }
        jobs
    }
}

/// Identity of one matrix cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellKey {
    /// Guest architecture.
    pub guest: Guest,
    /// Engine.
    pub engine: EngineKind,
    /// Workload.
    pub workload: Workload,
}

/// One unit of work for the runner: a single measurement of one cell.
#[derive(Debug, Clone, Copy)]
pub struct Job {
    /// Index into [`CampaignSpec::cells`].
    pub cell_index: usize,
    /// Repetition number, `0..reps`.
    pub rep: u32,
    /// The cell to measure.
    pub key: CellKey,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_ids_roundtrip() {
        for b in Benchmark::ALL {
            let w = Workload::Suite(b);
            assert_eq!(Workload::by_id(&w.id()), Some(w));
        }
        for a in App::ALL {
            let w = Workload::App(a);
            assert_eq!(Workload::by_id(&w.id()), Some(w));
        }
        assert_eq!(Workload::by_id("suite:No Such Bench"), None);
        assert_eq!(Workload::by_id("System Call"), None);
    }

    #[test]
    fn tested_ops_follow_the_benchmark_counter() {
        let c = Counters {
            syscalls: 7,
            mem_reads: 3,
            mem_writes: 4,
            ..Default::default()
        };
        assert_eq!(Workload::Suite(Benchmark::Syscall).tested_ops(&c), Some(7));
        assert_eq!(Workload::Suite(Benchmark::MemHot).tested_ops(&c), Some(7));
        assert_eq!(Workload::App(App::Bzip2Like).tested_ops(&c), None);
    }

    #[test]
    fn full_matrix_shape() {
        let spec = CampaignSpec::full_matrix(20_000);
        // 3 guests × 18 benchmarks × 5 engines.
        assert_eq!(spec.cells().len(), 270);
        // Nonprivileged Access is absent on petix and riscle: 2 guests ×
        // 5 engines × 1 rep fewer.
        assert_eq!(spec.expand().len(), 260);
    }

    #[test]
    fn reps_multiply_jobs_not_cells() {
        let mut spec = CampaignSpec::full_matrix(20_000);
        spec.reps = 3;
        assert_eq!(spec.cells().len(), 270);
        assert_eq!(spec.expand().len(), 260 * 3);
    }

    #[test]
    fn expansion_is_deterministic() {
        let spec = CampaignSpec::version_sweep(20_000, CampaignSpec::app_workloads());
        let a: Vec<(usize, u32)> = spec
            .expand()
            .iter()
            .map(|j| (j.cell_index, j.rep))
            .collect();
        let b: Vec<(usize, u32)> = spec
            .expand()
            .iter()
            .map(|j| (j.cell_index, j.rep))
            .collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 20 * 9);
    }

    #[test]
    fn shard_parsing_and_validation() {
        assert_eq!(Shard::parse("1/1"), Ok(Shard { index: 1, count: 1 }));
        assert_eq!(Shard::parse("2/4"), Ok(Shard { index: 2, count: 4 }));
        assert_eq!(Shard::parse(" 3 / 8 "), Ok(Shard { index: 3, count: 8 }));
        assert!(Shard::parse("0/4").is_err(), "shards are 1-based");
        assert!(Shard::parse("5/4").is_err(), "index beyond count");
        assert!(Shard::parse("1/0").is_err(), "zero shards");
        assert!(Shard::parse("1").is_err(), "missing separator");
        assert!(Shard::parse("a/b").is_err(), "non-numeric");
        assert_eq!(Shard::new(2, 4).unwrap().to_string(), "2/4");
    }

    #[test]
    fn shards_partition_the_job_list_cell_completely() {
        let mut spec = CampaignSpec::full_matrix(20_000);
        spec.reps = 3;
        let whole: Vec<(usize, u32)> = spec
            .expand()
            .iter()
            .map(|j| (j.cell_index, j.rep))
            .collect();
        for count in [1u32, 2, 3, 5, 7, 64] {
            let mut union: Vec<(usize, u32)> = Vec::new();
            for index in 1..=count {
                let shard = Shard::new(index, count).unwrap();
                let slice = spec.expand_shard(Some(shard));
                // Cell-complete: every repetition of an owned cell is here.
                for job in &slice {
                    assert!(shard.owns(job.cell_index));
                }
                union.extend(slice.iter().map(|j| (j.cell_index, j.rep)));
            }
            // The union over all shards is exactly the unsharded job
            // list: nothing lost, nothing duplicated.
            union.sort_unstable();
            let mut expected = whole.clone();
            expected.sort_unstable();
            assert_eq!(union, expected, "count {count}");
        }
    }

    #[test]
    fn shard_of_one_is_the_whole_matrix() {
        let spec = CampaignSpec::full_matrix(20_000);
        let whole: Vec<(usize, u32)> = spec
            .expand()
            .iter()
            .map(|j| (j.cell_index, j.rep))
            .collect();
        let sharded: Vec<(usize, u32)> = spec
            .expand_shard(Some(Shard { index: 1, count: 1 }))
            .iter()
            .map(|j| (j.cell_index, j.rep))
            .collect();
        assert_eq!(whole, sharded);
    }

    #[test]
    fn precision_target_validation() {
        let p = PrecisionTarget::new(0.1, 2, 10).unwrap();
        assert_eq!(p.target_rci, 0.1);
        assert_eq!((p.min_reps, p.max_reps), (2, 10));
        assert_eq!(p.to_string(), "rci 0.1 in 2..=10 reps");
        assert!(PrecisionTarget::new(0.0, 2, 10).is_err(), "zero target");
        assert!(PrecisionTarget::new(-0.1, 2, 10).is_err(), "negative");
        assert!(PrecisionTarget::new(f64::NAN, 2, 10).is_err(), "NaN");
        assert!(
            PrecisionTarget::new(f64::INFINITY, 2, 10).is_err(),
            "infinite"
        );
        assert!(
            PrecisionTarget::new(0.1, 1, 10).is_err(),
            "min-reps below 2 would converge on a fabricated 0 spread"
        );
        assert!(PrecisionTarget::new(0.1, 5, 4).is_err(), "max below min");
        assert!(PrecisionTarget::new(0.1, 3, 3).is_ok(), "min == max is ok");
    }

    #[test]
    fn adaptive_expansion_launches_min_reps_per_cell() {
        let mut spec = CampaignSpec::full_matrix(20_000);
        spec.reps = 7; // ignored in adaptive mode
        spec.precision = Some(PrecisionTarget::new(0.2, 3, 9).unwrap());
        assert_eq!(spec.initial_reps(), 3);
        assert_eq!(spec.cells().len(), 270);
        assert_eq!(spec.expand().len(), 260 * 3);
        spec.precision = None;
        assert_eq!(spec.initial_reps(), 7);
        assert_eq!(spec.expand().len(), 260 * 7);
    }

    #[test]
    fn version_sweep_uses_all_versions() {
        let spec = CampaignSpec::version_sweep(1000, CampaignSpec::suite_workloads());
        assert_eq!(spec.engines.len(), 20);
        assert!(spec.engines.iter().all(|e| matches!(e, EngineKind::Dbt(_))));
    }
}

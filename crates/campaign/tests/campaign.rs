//! Integration tests for the campaign subsystem: determinism across
//! runs, equivalence across worker counts, persistence round-trips,
//! shard/merge counter-exactness, and end-to-end regression detection.

use simbench_campaign::measure::{EngineKind, Guest};
use simbench_campaign::{
    compare, compare_counters, merge, replay, run, run_shard, run_shard_resumed, CampaignResult,
    CampaignSpec, CellStatus, Journal, RunnerOpts, Shard, Workload, JOURNAL_FILE,
};
use simbench_suite::Benchmark;

/// A small but representative spec: both guests, three engine kinds
/// (incl. one DBT version), benchmarks from three categories — one of
/// which is ISA-dependent (Nonprivileged Access is armlet-only).
fn spec(reps: u32) -> CampaignSpec {
    CampaignSpec {
        name: "itest".to_string(),
        guests: vec![Guest::Armlet, Guest::Petix],
        engines: vec![
            EngineKind::Interp,
            EngineKind::Dbt(simbench_dbt::VersionProfile::latest()),
            EngineKind::Native,
        ],
        workloads: vec![
            Workload::Suite(Benchmark::Syscall),
            Workload::Suite(Benchmark::MemHot),
            Workload::Suite(Benchmark::NonprivAccess),
            Workload::App(simbench_apps::App::Bzip2Like),
        ],
        scale: 500_000, // tiny kernels: the whole matrix runs in well under a second
        reps,
        precision: None,
        wall_limit: Some(std::time::Duration::from_secs(60)),
    }
}

/// One cell's identity plus its determinism-relevant fields.
type CellFingerprint = (
    String,
    String,
    String,
    String,
    u32,
    Vec<(&'static str, u64)>,
);

/// Strip timing, keep identity + determinism-relevant fields.
fn fingerprint(result: &CampaignResult) -> Vec<CellFingerprint> {
    result
        .cells
        .iter()
        .map(|c| {
            (
                c.guest.clone(),
                c.engine.clone(),
                c.workload.clone(),
                format!("{:?}", c.status),
                c.iterations,
                c.counters
                    .rows()
                    .into_iter()
                    .filter(|(_, v)| *v != 0)
                    .collect(),
            )
        })
        .collect()
}

#[test]
fn two_serial_runs_are_identical() {
    let s = spec(2);
    let a = run(&s, &RunnerOpts::serial());
    let b = run(&s, &RunnerOpts::serial());
    assert_eq!(fingerprint(&a), fingerprint(&b));
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        assert!(
            ca.counters_consistent,
            "{}/{}/{}",
            ca.guest, ca.engine, ca.workload
        );
        assert_eq!(ca.seconds.len(), cb.seconds.len());
    }
}

#[test]
fn parallel_run_matches_serial() {
    let s = spec(2);
    let serial = run(&s, &RunnerOpts::serial());
    let parallel = run(&s, &RunnerOpts::with_jobs(4));
    assert_eq!(
        fingerprint(&serial),
        fingerprint(&parallel),
        "counters and statuses must not depend on worker count"
    );
    // Same number of timing samples everywhere, even though the values
    // differ run to run.
    for (cs, cp) in serial.cells.iter().zip(&parallel.cells) {
        assert_eq!(cs.seconds.len(), cp.seconds.len());
        assert_eq!(cs.stats.is_some(), cp.stats.is_some());
    }
    assert_eq!(parallel.jobs, 4);
}

#[test]
fn worker_count_larger_than_job_count() {
    let s = CampaignSpec {
        workloads: vec![Workload::Suite(Benchmark::Syscall)],
        guests: vec![Guest::Armlet],
        engines: vec![EngineKind::Interp],
        ..spec(1)
    };
    let result = run(&s, &RunnerOpts::with_jobs(64));
    assert_eq!(result.cells.len(), 1);
    assert_eq!(result.cells[0].status, CellStatus::Ok);
}

#[test]
fn sharded_run_plus_merge_is_counter_exact_at_any_shard_count() {
    let s = spec(2);
    let whole = run(&s, &RunnerOpts::serial());
    let n_cells = s.cells().len();
    // Shard counts below, at, and beyond the cell count: the last
    // leaves some shards empty, which must still merge cleanly.
    for count in [1u32, 2, 3, 5, n_cells as u32 + 4] {
        let shards: Vec<CampaignResult> = (1..=count)
            .map(|i| {
                run_shard(
                    &s,
                    &RunnerOpts::with_jobs(2),
                    Some(Shard::new(i, count).unwrap()),
                )
            })
            .collect();
        // Each shard persists and reloads like any campaign result.
        let dir = std::env::temp_dir().join("simbench-shard-test");
        std::fs::create_dir_all(&dir).unwrap();
        let reloaded: Vec<CampaignResult> = shards
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let path = dir.join(format!("shard-{}-{i}-of-{count}.json", std::process::id()));
                r.save(&path).unwrap();
                let loaded = CampaignResult::load(&path).unwrap();
                std::fs::remove_file(&path).ok();
                loaded
            })
            .collect();
        let merged = merge(&reloaded).unwrap_or_else(|e| panic!("count {count}: {e}"));
        // Cell-for-cell identical to the unsharded run...
        assert_eq!(fingerprint(&merged), fingerprint(&whole), "count {count}");
        for (a, b) in merged.cells.iter().zip(&whole.cells) {
            assert_eq!(a.seconds.len(), b.seconds.len());
            assert_eq!(a.stats.is_some(), b.stats.is_some());
            assert_eq!(a.counter_variants, b.counter_variants);
        }
        // ...and counter-exact under the comparison gate, in both
        // directions.
        assert!(
            compare_counters(&whole, &merged, 0.0).clean(),
            "count {count}"
        );
        assert!(
            compare_counters(&merged, &whole, 0.0).clean(),
            "count {count}"
        );
    }
}

#[test]
fn persisted_result_round_trips_through_disk() {
    let s = spec(1);
    let result = run(&s, &RunnerOpts::with_jobs(2));
    let dir = std::env::temp_dir().join("simbench-campaign-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("roundtrip-{}.json", std::process::id()));
    result.save(&path).unwrap();
    let loaded = CampaignResult::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(fingerprint(&result), fingerprint(&loaded));
    assert_eq!(loaded.schema, simbench_campaign::SCHEMA);
    assert_eq!(loaded.scale, s.scale);
}

/// Fresh scratch directory for one journal test.
fn journal_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "simbench-journal-test-{}-{name}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Simulate a kill mid-campaign: rewrite the journal keeping only the
/// lines up to and including the `keep_cells`-th finished-cell record,
/// optionally followed by a torn (partial) trailing line, exactly as a
/// crash mid-`write` would leave it.
fn truncate_journal(dir: &std::path::Path, keep_cells: usize, torn_tail: bool) {
    let path = dir.join(JOURNAL_FILE);
    let text = std::fs::read_to_string(&path).unwrap();
    let mut kept = String::new();
    let mut cells = 0usize;
    for line in text.lines() {
        kept.push_str(line);
        kept.push('\n');
        if line.contains("\"record\": \"cell\"") {
            cells += 1;
            if cells == keep_cells {
                break;
            }
        }
    }
    assert_eq!(cells, keep_cells, "journal had too few cell records");
    if torn_tail {
        kept.push_str("{\"record\": \"cell\", \"index\": 99, \"ce");
    }
    std::fs::write(&path, kept).unwrap();
}

#[test]
fn journaled_run_resumed_from_truncated_journal_is_counter_exact() {
    let s = spec(2);
    let whole = run(&s, &RunnerOpts::serial());
    let dir = journal_dir("resume");

    // A journaled run behaves identically to a plain one and echoes
    // the journal directory into the artifact.
    let journal = Journal::create(&dir, &s, None).unwrap();
    let opts = RunnerOpts {
        journal: Some(std::sync::Arc::new(journal)),
        ..RunnerOpts::serial()
    };
    let journaled = run(&s, &opts);
    assert_eq!(fingerprint(&journaled), fingerprint(&whole));
    assert_eq!(journaled.journal.as_deref(), Some(&*dir.to_string_lossy()));

    // The completed journal replays every measured cell (not-on-ISA
    // cells launch no jobs and are re-derived free on resume), and a
    // journal written for a different spec is rejected rather than
    // silently resumed.
    let measured = whole
        .cells
        .iter()
        .filter(|c| c.status != CellStatus::NotOnIsa)
        .count();
    let full = replay(&dir, &s, None).unwrap();
    assert!(!full.torn);
    assert_eq!(full.cells.len(), measured);
    assert_eq!(full.broken, 0);
    assert!(replay(&dir, &spec(3), None).is_err());

    // Chop the journal down to a prefix of finished cells with a torn
    // final line — the shape a SIGKILL mid-append leaves behind.
    let keep = s.cells().len() / 2;
    truncate_journal(&dir, keep, true);
    let partial = replay(&dir, &s, None).unwrap();
    assert!(partial.torn, "torn trailing line must be detected");
    assert_eq!(partial.cells.len(), keep);

    // Resuming measures only the remainder yet lands counter-exact on
    // the uninterrupted run.
    let resumed = run_shard_resumed(&s, &RunnerOpts::serial(), None, &partial.cells);
    assert_eq!(fingerprint(&resumed), fingerprint(&whole));
    assert!(compare_counters(&whole, &resumed, 0.0).clean());
    assert!(compare_counters(&resumed, &whole, 0.0).clean());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn broken_journaled_cells_are_remeasured_on_resume() {
    let s = spec(1);
    let whole = run(&s, &RunnerOpts::serial());
    let dir = journal_dir("broken");

    // Hand-write a journal: one cleanly finished cell, plus one that
    // was quarantined and one that timed out before the "crash".
    let ok_indices: Vec<usize> = whole
        .cells
        .iter()
        .enumerate()
        .filter(|(_, c)| c.status == CellStatus::Ok)
        .map(|(i, _)| i)
        .take(3)
        .collect();
    let [good, poisoned, hung] = ok_indices[..] else {
        panic!("spec has at least three ok cells");
    };
    let journal = Journal::create(&dir, &s, None).unwrap();
    journal.record_cell(good, &whole.cells[good]);
    let mut cell = whole.cells[poisoned].clone();
    cell.status = CellStatus::Quarantined("engine panicked: injected".to_string());
    journal.record_cell(poisoned, &cell);
    let mut cell = whole.cells[hung].clone();
    cell.status = CellStatus::TimedOut("exceeded 1s cell timeout".to_string());
    journal.record_cell(hung, &cell);
    drop(journal);

    // Broken cells do not replay as finished — they get a fresh chance.
    let rep = replay(&dir, &s, None).unwrap();
    assert_eq!(rep.broken, 2);
    assert_eq!(rep.cells.len(), 1);
    assert_eq!(rep.cells[0].0, good);

    // After resume the quarantined/timed-out cells are clean again and
    // the whole artifact is counter-exact.
    let resumed = run_shard_resumed(&s, &RunnerOpts::serial(), None, &rep.cells);
    assert_eq!(resumed.cells[poisoned].status, CellStatus::Ok);
    assert_eq!(resumed.cells[hung].status, CellStatus::Ok);
    assert_eq!(fingerprint(&resumed), fingerprint(&whole));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resumed_shards_merge_counter_exact_at_shard_counts_1_2_5() {
    let s = spec(2);
    let whole = run(&s, &RunnerOpts::serial());
    for count in [1u32, 2, 5] {
        let shards: Vec<CampaignResult> = (1..=count)
            .map(|i| {
                let shard = Shard::new(i, count).unwrap();
                let dir = journal_dir(&format!("shard-{i}-of-{count}"));
                // Journal the shard, then "kill" it after roughly half
                // its cells finished and resume from the journal.
                let journal = Journal::create(&dir, &s, Some(shard)).unwrap();
                let opts = RunnerOpts {
                    journal: Some(std::sync::Arc::new(journal)),
                    ..RunnerOpts::serial()
                };
                let full = run_shard(&s, &opts, Some(shard));
                let finished = full
                    .cells
                    .iter()
                    .filter(|c| c.status != CellStatus::Skipped && c.status != CellStatus::NotOnIsa)
                    .count();
                truncate_journal(&dir, finished / 2, finished % 2 == 1);
                let rep = replay(&dir, &s, Some(shard)).unwrap();
                let resumed = run_shard_resumed(&s, &RunnerOpts::serial(), Some(shard), &rep.cells);
                std::fs::remove_dir_all(&dir).ok();
                resumed
            })
            .collect();
        let merged = merge(&shards).unwrap_or_else(|e| panic!("count {count}: {e}"));
        assert_eq!(fingerprint(&merged), fingerprint(&whole), "count {count}");
        assert!(
            compare_counters(&whole, &merged, 0.0).clean(),
            "count {count}"
        );
        assert!(
            compare_counters(&merged, &whole, 0.0).clean(),
            "count {count}"
        );
    }
}

#[test]
fn compare_flags_artificially_slowed_cell() {
    let s = spec(1);
    let current = run(&s, &RunnerOpts::with_jobs(2));
    // Build a baseline in which one cell was 10× faster than what we
    // just measured — i.e. the current run is a 10× regression there.
    let mut baseline = current.clone();
    let idx = baseline
        .cells
        .iter()
        .position(|c| c.status == CellStatus::Ok)
        .expect("at least one clean cell");
    let slowed_key = (
        baseline.cells[idx].guest.clone(),
        baseline.cells[idx].engine.clone(),
        baseline.cells[idx].workload.clone(),
    );
    baseline.cells[idx]
        .seconds
        .iter_mut()
        .for_each(|t| *t /= 10.0);
    baseline.cells[idx].stats = simbench_campaign::stats(&baseline.cells[idx].seconds);

    let report = compare(&baseline, &current, 0.5);
    assert!(!report.clean());
    let regressions = report.regressions();
    assert_eq!(regressions.len(), 1);
    assert_eq!(
        (
            regressions[0].guest.clone(),
            regressions[0].engine.clone(),
            regressions[0].workload.clone()
        ),
        slowed_key
    );
    assert!(regressions[0].ratio.unwrap() > 5.0);
    // And the same data compared against itself is clean.
    assert!(compare(&current, &current, 0.5).clean());
}

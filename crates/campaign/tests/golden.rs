//! Golden-fixture tests for the persisted campaign schema.
//!
//! The committed fixtures pin the on-disk format: `campaign_v1.json`
//! and `campaign_v2.json` are legacy `simbench-campaign/v1` / `v2`
//! documents, `campaign_v3.json` is their migrated `v3` rendering, and
//! `campaign_v3_shard.json` pins a partial (shard) result with shard
//! metadata and `skipped` cells. Any unintentional change to the
//! serializer, the parser, or a migration shows up here as a byte
//! diff; after an *intentional* schema change, regenerate the v3
//! fixtures with
//!
//! ```sh
//! cargo test -p simbench-campaign --test golden regen -- --ignored
//! ```

use simbench_campaign::{
    CampaignResult, CellStatus, LoadError, Shard, SCHEMA, SCHEMA_V1, SCHEMA_V2,
};

const V1: &str = include_str!("fixtures/campaign_v1.json");
const V2: &str = include_str!("fixtures/campaign_v2.json");
const V3: &str = include_str!("fixtures/campaign_v3.json");
const V3_SHARD: &str = include_str!("fixtures/campaign_v3_shard.json");

/// The shard fixture's in-memory value: shard 2 of 3, one owned cell
/// measured, the two unowned cells skipped.
fn shard_demo() -> CampaignResult {
    let mut r = CampaignResult::from_json(V3).unwrap();
    r.shard = Some(Shard::new(2, 3).unwrap());
    for (i, cell) in r.cells.iter_mut().enumerate() {
        if i != 1 {
            cell.status = CellStatus::Skipped;
            cell.seconds.clear();
            cell.stats = None;
            cell.counters = Default::default();
            cell.counters_consistent = true;
            cell.tested_ops = None;
            cell.counter_variants.clear();
            cell.iterations = 0;
        }
    }
    r
}

#[test]
fn v3_fixture_round_trips_byte_stably() {
    let parsed = CampaignResult::from_json(V3).expect("v3 fixture parses");
    assert_eq!(parsed.schema, SCHEMA);
    assert_eq!(parsed.shard, None);
    assert_eq!(
        parsed.to_json(),
        V3,
        "re-serializing the v3 fixture must reproduce it byte for byte"
    );
}

#[test]
fn v3_shard_fixture_round_trips_byte_stably() {
    let parsed = CampaignResult::from_json(V3_SHARD).expect("v3 shard fixture parses");
    assert_eq!(parsed.schema, SCHEMA);
    assert_eq!(parsed.shard, Some(Shard::new(2, 3).unwrap()));
    assert_eq!(parsed.cells[0].status, CellStatus::Skipped);
    assert_eq!(parsed.cells[1].status, CellStatus::Ok);
    assert_eq!(
        parsed.to_json(),
        V3_SHARD,
        "re-serializing the shard fixture must reproduce it byte for byte"
    );
}

#[test]
fn v2_fixture_migrates_to_exactly_the_v3_fixture() {
    assert!(V2.contains(SCHEMA_V2));
    let migrated = CampaignResult::from_json(V2).expect("v2 fixture parses");
    assert_eq!(migrated.schema, SCHEMA, "migration normalizes the schema");
    assert_eq!(migrated.shard, None, "v2 predates sharding");
    assert_eq!(
        migrated.to_json(),
        V3,
        "saving a loaded v2 file must produce the committed v3 rendering"
    );
}

#[test]
fn v1_fixture_migrates_to_exactly_the_v3_fixture() {
    assert!(V1.contains(SCHEMA_V1));
    let migrated = CampaignResult::from_json(V1).expect("v1 fixture parses");
    assert_eq!(migrated.schema, SCHEMA, "migration normalizes the schema");
    assert_eq!(
        migrated.to_json(),
        V3,
        "saving a loaded v1 file must produce the committed v3 rendering"
    );
    // Migration recomputes the tested-op count from the stored profile.
    assert_eq!(migrated.cells[0].tested_ops, Some(2500));
    assert_eq!(migrated.cells[1].tested_ops, Some(100));
    assert_eq!(migrated.cells[2].tested_ops, None);
    // ...but cannot invent per-repetition variants v1 never recorded.
    assert!(!migrated.cells[1].counters_consistent);
    assert!(migrated.cells[1].counter_variants.is_empty());
}

#[test]
fn migrated_fixture_keeps_cell_semantics() {
    let migrated = CampaignResult::from_json(V1).unwrap();
    assert_eq!(migrated.name, "golden");
    assert_eq!(migrated.cells.len(), 3);
    assert_eq!(migrated.cells[0].status, CellStatus::Ok);
    assert_eq!(migrated.cells[0].counters.syscalls, 2500);
    assert_eq!(
        migrated.cells[2].status,
        CellStatus::Unsupported("intc device model".to_string())
    );
    assert!(migrated.cells[2].stats.is_none());
}

#[test]
fn unknown_schema_versions_are_typed_errors() {
    for found in ["simbench-campaign/v0", "simbench-campaign/v4", "nonsense"] {
        let text = V3.replace(SCHEMA, found);
        match CampaignResult::from_json(&text) {
            Err(LoadError::Schema { found: f }) => assert_eq!(f, found),
            other => panic!("expected a schema error for {found:?}, got {other:?}"),
        }
    }
}

#[test]
fn malformed_documents_are_typed_errors_not_panics() {
    // Not JSON at all.
    assert!(matches!(
        CampaignResult::from_json("simbench"),
        Err(LoadError::Json(_))
    ));
    // Valid JSON, no schema.
    assert!(matches!(
        CampaignResult::from_json("{}"),
        Err(LoadError::Malformed(_))
    ));
    // Known schema, missing cells.
    let text = format!("{{\"schema\": \"{SCHEMA}\", \"name\": \"x\"}}");
    assert!(matches!(
        CampaignResult::from_json(&text),
        Err(LoadError::Malformed(_))
    ));
    // Unknown counter name inside a cell.
    let text = V3.replace("\"instructions\"", "\"instruction_bytes\"");
    match CampaignResult::from_json(&text) {
        Err(LoadError::Malformed(e)) => assert!(e.contains("unknown counter"), "{e}"),
        other => panic!("expected malformed, got {other:?}"),
    }
    // Corrupted timing entry.
    let text = V3.replace("[0.011, 0.0105]", "[0.011, true]");
    assert!(matches!(
        CampaignResult::from_json(&text),
        Err(LoadError::Malformed(_))
    ));
    // Shard metadata with an out-of-range index.
    let text = V3_SHARD.replace("\"index\": 2", "\"index\": 9");
    match CampaignResult::from_json(&text) {
        Err(LoadError::Malformed(e)) => assert!(e.contains("shard"), "{e}"),
        other => panic!("expected malformed, got {other:?}"),
    }
}

#[test]
fn unreadable_files_are_io_errors() {
    let err = CampaignResult::load("/nonexistent/simbench-golden.json").unwrap_err();
    assert!(matches!(err, LoadError::Io(_)), "{err}");
}

/// Regenerates `fixtures/campaign_v3.json` from the committed v1
/// fixture. Ignored by default: run it manually after an intentional
/// schema change, then review the diff.
#[test]
#[ignore = "writes the v3 fixture; run manually after intentional schema changes"]
fn regen_v3_fixture() {
    let migrated = CampaignResult::from_json(V1).unwrap();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/campaign_v3.json"
    );
    std::fs::write(path, migrated.to_json()).unwrap();
}

/// Regenerates `fixtures/campaign_v3_shard.json` from the v3 fixture.
#[test]
#[ignore = "writes the shard fixture; run manually after intentional schema changes"]
fn regen_v3_shard_fixture() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/campaign_v3_shard.json"
    );
    std::fs::write(path, shard_demo().to_json()).unwrap();
}

//! Golden-fixture tests for the persisted campaign schema.
//!
//! The committed fixtures pin the on-disk format: `campaign_v1.json`
//! is a legacy `simbench-campaign/v1` document, `campaign_v2.json` is
//! its migrated `v2` rendering. Any unintentional change to the
//! serializer, the parser, or the migration shows up here as a byte
//! diff; after an *intentional* schema change, regenerate the v2
//! fixture with
//!
//! ```sh
//! cargo test -p simbench-campaign --test golden regen -- --ignored
//! ```

use simbench_campaign::{CampaignResult, CellStatus, LoadError, SCHEMA, SCHEMA_V1};

const V1: &str = include_str!("fixtures/campaign_v1.json");
const V2: &str = include_str!("fixtures/campaign_v2.json");

#[test]
fn v2_fixture_round_trips_byte_stably() {
    let parsed = CampaignResult::from_json(V2).expect("v2 fixture parses");
    assert_eq!(parsed.schema, SCHEMA);
    assert_eq!(
        parsed.to_json(),
        V2,
        "re-serializing the v2 fixture must reproduce it byte for byte"
    );
}

#[test]
fn v1_fixture_migrates_to_exactly_the_v2_fixture() {
    assert!(V1.contains(SCHEMA_V1));
    let migrated = CampaignResult::from_json(V1).expect("v1 fixture parses");
    assert_eq!(migrated.schema, SCHEMA, "migration normalizes the schema");
    assert_eq!(
        migrated.to_json(),
        V2,
        "saving a loaded v1 file must produce the committed v2 rendering"
    );
    // Migration recomputes the tested-op count from the stored profile.
    assert_eq!(migrated.cells[0].tested_ops, Some(2500));
    assert_eq!(migrated.cells[1].tested_ops, Some(100));
    assert_eq!(migrated.cells[2].tested_ops, None);
    // ...but cannot invent per-repetition variants v1 never recorded.
    assert!(!migrated.cells[1].counters_consistent);
    assert!(migrated.cells[1].counter_variants.is_empty());
}

#[test]
fn migrated_fixture_keeps_cell_semantics() {
    let migrated = CampaignResult::from_json(V1).unwrap();
    assert_eq!(migrated.name, "golden");
    assert_eq!(migrated.cells.len(), 3);
    assert_eq!(migrated.cells[0].status, CellStatus::Ok);
    assert_eq!(migrated.cells[0].counters.syscalls, 2500);
    assert_eq!(
        migrated.cells[2].status,
        CellStatus::Unsupported("intc device model".to_string())
    );
    assert!(migrated.cells[2].stats.is_none());
}

#[test]
fn unknown_schema_versions_are_typed_errors() {
    for found in ["simbench-campaign/v0", "simbench-campaign/v3", "nonsense"] {
        let text = V2.replace(SCHEMA, found);
        match CampaignResult::from_json(&text) {
            Err(LoadError::Schema { found: f }) => assert_eq!(f, found),
            other => panic!("expected a schema error for {found:?}, got {other:?}"),
        }
    }
}

#[test]
fn malformed_documents_are_typed_errors_not_panics() {
    // Not JSON at all.
    assert!(matches!(
        CampaignResult::from_json("simbench"),
        Err(LoadError::Json(_))
    ));
    // Valid JSON, no schema.
    assert!(matches!(
        CampaignResult::from_json("{}"),
        Err(LoadError::Malformed(_))
    ));
    // Known schema, missing cells.
    let text = format!("{{\"schema\": \"{SCHEMA}\", \"name\": \"x\"}}");
    assert!(matches!(
        CampaignResult::from_json(&text),
        Err(LoadError::Malformed(_))
    ));
    // Unknown counter name inside a cell.
    let text = V2.replace("\"instructions\"", "\"instruction_bytes\"");
    match CampaignResult::from_json(&text) {
        Err(LoadError::Malformed(e)) => assert!(e.contains("unknown counter"), "{e}"),
        other => panic!("expected malformed, got {other:?}"),
    }
    // Corrupted timing entry.
    let text = V2.replace("[0.011, 0.0105]", "[0.011, true]");
    assert!(matches!(
        CampaignResult::from_json(&text),
        Err(LoadError::Malformed(_))
    ));
}

#[test]
fn unreadable_files_are_io_errors() {
    let err = CampaignResult::load("/nonexistent/simbench-golden.json").unwrap_err();
    assert!(matches!(err, LoadError::Io(_)), "{err}");
}

/// Regenerates `fixtures/campaign_v2.json` from the committed v1
/// fixture. Ignored by default: run it manually after an intentional
/// schema change, then review the diff.
#[test]
#[ignore = "writes the v2 fixture; run manually after intentional schema changes"]
fn regen_v2_fixture() {
    let migrated = CampaignResult::from_json(V1).unwrap();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/campaign_v2.json"
    );
    std::fs::write(path, migrated.to_json()).unwrap();
}

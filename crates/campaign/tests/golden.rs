//! Golden-fixture tests for the persisted campaign schema.
//!
//! The committed fixtures pin the on-disk format: `campaign_v1.json`
//! through `campaign_v5.json` are legacy documents,
//! `campaign_v6.json` is their migrated `simbench-campaign/v6`
//! rendering (pre-v4 statistics recomputed from the raw timings,
//! `reps_run` / `stop_reason` filled in; v4/v5 documents pass through
//! with stats and verdicts untouched), and `campaign_v3_shard.json` /
//! `campaign_v4_shard.json` / `campaign_v5_shard.json` /
//! `campaign_v6_shard.json` pin a partial (shard) result with shard
//! metadata and `skipped` cells across generations. Any unintentional
//! change to the serializer, the parser, or a migration shows up here
//! as a byte diff; after an *intentional* schema change, regenerate
//! the v6 fixtures with
//!
//! ```sh
//! cargo test -p simbench-campaign --test golden regen -- --ignored
//! ```

use simbench_campaign::{
    CampaignResult, CellStatus, LoadError, Shard, StopReason, SCHEMA, SCHEMA_V1, SCHEMA_V2,
    SCHEMA_V3, SCHEMA_V4, SCHEMA_V5,
};

const V1: &str = include_str!("fixtures/campaign_v1.json");
const V2: &str = include_str!("fixtures/campaign_v2.json");
const V3: &str = include_str!("fixtures/campaign_v3.json");
const V3_SHARD: &str = include_str!("fixtures/campaign_v3_shard.json");
const V4: &str = include_str!("fixtures/campaign_v4.json");
const V4_SHARD: &str = include_str!("fixtures/campaign_v4_shard.json");
const V5: &str = include_str!("fixtures/campaign_v5.json");
const V5_SHARD: &str = include_str!("fixtures/campaign_v5_shard.json");
const V6: &str = include_str!("fixtures/campaign_v6.json");
const V6_SHARD: &str = include_str!("fixtures/campaign_v6_shard.json");

/// The shard fixture's in-memory value: shard 2 of 3, one owned cell
/// measured, the two unowned cells skipped.
fn shard_demo() -> CampaignResult {
    let mut r = CampaignResult::from_json(V6).unwrap();
    r.shard = Some(Shard::new(2, 3).unwrap());
    for (i, cell) in r.cells.iter_mut().enumerate() {
        if i != 1 {
            cell.status = CellStatus::Skipped;
            cell.seconds.clear();
            cell.stats = None;
            cell.counters = Default::default();
            cell.counters_consistent = true;
            cell.tested_ops = None;
            cell.counter_variants.clear();
            cell.iterations = 0;
            cell.reps_run = 0;
            cell.stop_reason = None;
        }
    }
    r
}

#[test]
fn v6_fixture_round_trips_byte_stably() {
    let parsed = CampaignResult::from_json(V6).expect("v6 fixture parses");
    assert_eq!(parsed.schema, SCHEMA);
    assert_eq!(parsed.shard, None);
    assert_eq!(parsed.telemetry, None);
    assert_eq!(parsed.journal, None);
    assert_eq!(
        parsed.to_json(),
        V6,
        "re-serializing the v6 fixture must reproduce it byte for byte"
    );
}

#[test]
fn v6_shard_fixture_round_trips_byte_stably() {
    let parsed = CampaignResult::from_json(V6_SHARD).expect("v6 shard fixture parses");
    assert_eq!(parsed.schema, SCHEMA);
    assert_eq!(parsed.shard, Some(Shard::new(2, 3).unwrap()));
    assert_eq!(parsed.cells[0].status, CellStatus::Skipped);
    assert_eq!(parsed.cells[1].status, CellStatus::Ok);
    assert_eq!(
        parsed.to_json(),
        V6_SHARD,
        "re-serializing the shard fixture must reproduce it byte for byte"
    );
}

#[test]
fn v5_fixture_migrates_to_exactly_the_v6_fixture() {
    assert!(V5.contains(SCHEMA_V5));
    let migrated = CampaignResult::from_json(V5).expect("v5 fixture parses");
    assert_eq!(migrated.schema, SCHEMA, "migration normalizes the schema");
    assert_eq!(
        migrated.to_json(),
        V6,
        "saving a loaded v5 file must produce the committed v6 rendering \
         (the only difference is the schema line)"
    );
    // v5 statistics and stop verdicts are trusted verbatim; the new v6
    // fields take their defaults (attempts = reps_run, no journal).
    assert_eq!(migrated.cells[0].attempts, migrated.cells[0].reps_run);
    assert_eq!(migrated.journal, None, "v5 predates journaling");
}

#[test]
fn v5_shard_fixture_migrates_to_exactly_the_v6_shard_fixture() {
    let migrated = CampaignResult::from_json(V5_SHARD).expect("v5 shard fixture parses");
    assert_eq!(migrated.schema, SCHEMA);
    assert_eq!(migrated.shard, Some(Shard::new(2, 3).unwrap()));
    assert_eq!(migrated.to_json(), V6_SHARD);
}

#[test]
fn v4_fixture_migrates_to_exactly_the_v6_fixture() {
    assert!(V4.contains(SCHEMA_V4));
    let migrated = CampaignResult::from_json(V4).expect("v4 fixture parses");
    assert_eq!(migrated.schema, SCHEMA, "migration normalizes the schema");
    assert_eq!(
        migrated.to_json(),
        V6,
        "saving a loaded v4 file must produce the committed v6 rendering \
         (the only difference is the schema line)"
    );
    // v4 statistics and stop verdicts are trusted verbatim — unlike
    // the pre-v4 migrations nothing is recomputed.
    assert_eq!(migrated.cells[0].reps_run, 2);
    assert_eq!(migrated.cells[0].stop_reason, Some(StopReason::Fixed));
    assert_eq!(migrated.telemetry, None, "v4 predates telemetry");
}

#[test]
fn v3_fixture_migrates_to_exactly_the_v6_fixture() {
    assert!(V3.contains(SCHEMA_V3));
    let migrated = CampaignResult::from_json(V3).expect("v3 fixture parses");
    assert_eq!(migrated.schema, SCHEMA, "migration normalizes the schema");
    assert_eq!(
        migrated.to_json(),
        V6,
        "saving a loaded v3 file must produce the committed v6 rendering"
    );
    // Migration recomputes the statistics from the raw timings: the
    // stored v3 CI used the normal 1.96 critical value, the migrated
    // one the Student-t value for the cell's sample count.
    let s = migrated.cells[0].stats.unwrap();
    assert_eq!(s.n, 2);
    let expected = simbench_campaign::t_critical_95(1) * s.stddev / (2f64).sqrt();
    assert!(
        (s.ci95 - expected).abs() < 1e-15,
        "{} != {expected}",
        s.ci95
    );
    // Pre-v4 campaigns were always fixed-reps.
    assert_eq!(migrated.cells[0].reps_run, 2);
    assert_eq!(migrated.cells[0].stop_reason, Some(StopReason::Fixed));
    assert_eq!(
        migrated.cells[2].reps_run, 0,
        "failed cell count unknowable"
    );
    assert_eq!(migrated.cells[2].stop_reason, None);
    assert_eq!(migrated.precision, None, "v3 predates adaptive mode");
}

#[test]
fn v4_shard_fixture_migrates_to_exactly_the_v6_shard_fixture() {
    let migrated = CampaignResult::from_json(V4_SHARD).expect("v4 shard fixture parses");
    assert_eq!(migrated.schema, SCHEMA);
    assert_eq!(migrated.shard, Some(Shard::new(2, 3).unwrap()));
    assert_eq!(migrated.to_json(), V6_SHARD);
}

#[test]
fn v3_shard_fixture_migrates_to_exactly_the_v6_shard_fixture() {
    let migrated = CampaignResult::from_json(V3_SHARD).expect("v3 shard fixture parses");
    assert_eq!(migrated.schema, SCHEMA);
    assert_eq!(migrated.shard, Some(Shard::new(2, 3).unwrap()));
    assert_eq!(
        migrated.to_json(),
        V6_SHARD,
        "saving a loaded v3 shard file must produce the committed v6 rendering"
    );
}

#[test]
fn v2_fixture_migrates_to_exactly_the_v6_fixture() {
    assert!(V2.contains(SCHEMA_V2));
    let migrated = CampaignResult::from_json(V2).expect("v2 fixture parses");
    assert_eq!(migrated.schema, SCHEMA, "migration normalizes the schema");
    assert_eq!(migrated.shard, None, "v2 predates sharding");
    assert_eq!(
        migrated.to_json(),
        V6,
        "saving a loaded v2 file must produce the committed v6 rendering"
    );
}

#[test]
fn v1_fixture_migrates_to_exactly_the_v6_fixture() {
    assert!(V1.contains(SCHEMA_V1));
    let migrated = CampaignResult::from_json(V1).expect("v1 fixture parses");
    assert_eq!(migrated.schema, SCHEMA, "migration normalizes the schema");
    assert_eq!(
        migrated.to_json(),
        V6,
        "saving a loaded v1 file must produce the committed v6 rendering"
    );
    // Migration recomputes the tested-op count from the stored profile.
    assert_eq!(migrated.cells[0].tested_ops, Some(2500));
    assert_eq!(migrated.cells[1].tested_ops, Some(100));
    assert_eq!(migrated.cells[2].tested_ops, None);
    // ...but cannot invent per-repetition variants v1 never recorded.
    assert!(!migrated.cells[1].counters_consistent);
    assert!(migrated.cells[1].counter_variants.is_empty());
}

#[test]
fn migrated_fixture_keeps_cell_semantics() {
    let migrated = CampaignResult::from_json(V1).unwrap();
    assert_eq!(migrated.name, "golden");
    assert_eq!(migrated.cells.len(), 3);
    assert_eq!(migrated.cells[0].status, CellStatus::Ok);
    assert_eq!(migrated.cells[0].counters.syscalls, 2500);
    assert_eq!(
        migrated.cells[2].status,
        CellStatus::Unsupported("intc device model".to_string())
    );
    assert!(migrated.cells[2].stats.is_none());
}

#[test]
fn unknown_schema_versions_are_typed_errors() {
    for found in ["simbench-campaign/v0", "simbench-campaign/v7", "nonsense"] {
        let text = V6.replace(SCHEMA, found);
        match CampaignResult::from_json(&text) {
            Err(LoadError::Schema { found: f }) => assert_eq!(f, found),
            other => panic!("expected a schema error for {found:?}, got {other:?}"),
        }
    }
}

#[test]
fn malformed_documents_are_typed_errors_not_panics() {
    // Not JSON at all.
    assert!(matches!(
        CampaignResult::from_json("simbench"),
        Err(LoadError::Json(_))
    ));
    // Valid JSON, no schema.
    assert!(matches!(
        CampaignResult::from_json("{}"),
        Err(LoadError::Malformed(_))
    ));
    // Known schema, missing cells.
    let text = format!("{{\"schema\": \"{SCHEMA}\", \"name\": \"x\"}}");
    assert!(matches!(
        CampaignResult::from_json(&text),
        Err(LoadError::Malformed(_))
    ));
    // Unknown counter name inside a cell.
    let text = V6.replace("\"instructions\"", "\"instruction_bytes\"");
    match CampaignResult::from_json(&text) {
        Err(LoadError::Malformed(e)) => assert!(e.contains("unknown counter"), "{e}"),
        other => panic!("expected malformed, got {other:?}"),
    }
    // Corrupted timing entry.
    let text = V6.replace("[0.011, 0.0105]", "[0.011, true]");
    assert!(matches!(
        CampaignResult::from_json(&text),
        Err(LoadError::Malformed(_))
    ));
    // An unknown stop reason.
    let text = V6.replace("\"stop_reason\": \"fixed\"", "\"stop_reason\": \"bored\"");
    match CampaignResult::from_json(&text) {
        Err(LoadError::Malformed(e)) => assert!(e.contains("stop_reason"), "{e}"),
        other => panic!("expected malformed, got {other:?}"),
    }
    // Shard metadata with an out-of-range index.
    let text = V6_SHARD.replace("\"index\": 2", "\"index\": 9");
    match CampaignResult::from_json(&text) {
        Err(LoadError::Malformed(e)) => assert!(e.contains("shard"), "{e}"),
        other => panic!("expected malformed, got {other:?}"),
    }
    // A telemetry block that is not an object.
    let text = V6.replace(
        "\"created_unix\": 1700000000,",
        "\"created_unix\": 1700000000,\n  \"telemetry\": [],",
    );
    match CampaignResult::from_json(&text) {
        Err(LoadError::Malformed(e)) => assert!(e.contains("telemetry"), "{e}"),
        other => panic!("expected malformed, got {other:?}"),
    }
}

#[test]
fn unreadable_files_are_io_errors() {
    let err = CampaignResult::load("/nonexistent/simbench-golden.json").unwrap_err();
    assert!(matches!(err, LoadError::Io(_)), "{err}");
}

/// Regenerates `fixtures/campaign_v6.json` from the committed v1
/// fixture. Ignored by default: run it manually after an intentional
/// schema change, then review the diff.
#[test]
#[ignore = "writes the v6 fixture; run manually after intentional schema changes"]
fn regen_v6_fixture() {
    let migrated = CampaignResult::from_json(V1).unwrap();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/campaign_v6.json"
    );
    std::fs::write(path, migrated.to_json()).unwrap();
}

/// Regenerates `fixtures/campaign_v6_shard.json` from the v6 fixture.
#[test]
#[ignore = "writes the shard fixture; run manually after intentional schema changes"]
fn regen_v6_shard_fixture() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/campaign_v6_shard.json"
    );
    std::fs::write(path, shard_demo().to_json()).unwrap();
}

//! Property tests for the cell statistics: on *any* finite sample
//! vector — including zeros, negatives and wild magnitudes — `stats`
//! must never fabricate a value, never emit a non-finite field, and
//! must account for every input sample as either kept, rejected as an
//! impossible timing, or rejected as an outlier. The confidence
//! interval must use Student-t critical values and tighten as samples
//! accumulate.

use proptest::prelude::*;
use simbench_campaign::{stats, t_critical_95};

/// Decode a `(mantissa, exponent)` pair into a finite f64 spanning
/// ~25 decades either side of 1.0, zero and negatives included.
fn decode(m: i64, e: i8) -> f64 {
    m as f64 * 10f64.powi(e as i32)
}

proptest! {
    #[test]
    fn stats_accounts_for_every_sample_and_stays_finite(
        raw in prop::collection::vec((any::<i64>(), -12i8..13), 0..40)
    ) {
        let samples: Vec<f64> = raw.iter().map(|&(m, e)| decode(m, e)).collect();
        let valid = samples.iter().filter(|v| v.is_finite() && **v > 0.0).count();
        match stats(&samples) {
            None => prop_assert_eq!(valid, 0, "stats may only refuse all-invalid input"),
            Some(s) => {
                // Every sample is either kept, rejected-invalid or an
                // outlier — the invalid ones never clamped into the
                // kept set, and the two rejection causes never lumped:
                // a broken clock and a noisy cell are different bugs.
                prop_assert_eq!(s.n + s.rejected_invalid + s.outliers, samples.len());
                prop_assert_eq!(s.rejected_invalid, samples.len() - valid);
                prop_assert!(s.n >= 1 && s.n <= valid);
                // No field may be NaN or infinite, whatever the input.
                for (name, v) in [
                    ("min", s.min),
                    ("max", s.max),
                    ("mean", s.mean),
                    ("median", s.median),
                    ("stddev", s.stddev),
                    ("geomean", s.geomean),
                    ("ci95", s.ci95),
                ] {
                    prop_assert!(v.is_finite(), "{} = {} is not finite", name, v);
                }
                // Kept samples are real timings, so the location
                // estimates are strictly positive and ordered (mean and
                // geomean up to accumulated rounding).
                let fuzzy_le = |a: f64, b: f64| a <= b * (1.0 + 1e-9);
                prop_assert!(s.min > 0.0);
                prop_assert!(s.min <= s.median && s.median <= s.max);
                prop_assert!(fuzzy_le(s.min, s.mean) && fuzzy_le(s.mean, s.max));
                prop_assert!(fuzzy_le(s.min, s.geomean) && fuzzy_le(s.geomean, s.max));
                prop_assert!(s.stddev >= 0.0 && s.ci95 >= 0.0);
                // The CI is the Student-t interval on the kept samples,
                // never the normal approximation.
                if s.n >= 2 {
                    let expected = t_critical_95(s.n - 1) * s.stddev / (s.n as f64).sqrt();
                    prop_assert!(
                        (s.ci95 - expected).abs() <= expected.abs() * 1e-12,
                        "ci95 {} != t-based {}", s.ci95, expected
                    );
                }
            }
        }
    }

    #[test]
    fn all_positive_vectors_always_yield_stats(
        raw in prop::collection::vec((1i64..1_000_000, -6i8..7), 1..20)
    ) {
        let samples: Vec<f64> = raw.iter().map(|&(m, e)| decode(m, e)).collect();
        let s = stats(&samples).expect("positive samples always produce stats");
        prop_assert_eq!(s.n + s.rejected_invalid + s.outliers, samples.len());
        prop_assert_eq!(s.rejected_invalid, 0);
        // With nothing invalid, rejection can only come from the MAD
        // outlier pass, which keeps everything below four samples.
        if samples.len() < 4 {
            prop_assert_eq!(s.outliers, 0);
        }
    }

    /// Growing the sample count without changing the sample
    /// *distribution* must never widen the confidence interval — the
    /// soundness condition an adaptive repetition controller stands on
    /// (more measuring can only tighten or hold the interval, so
    /// "measure until tight" terminates meaningfully). The fixed
    /// distribution is modelled exactly: a base multiset of k >= 4
    /// positive samples repeated whole-cycle m times keeps every
    /// quantile (median, MAD, and hence the kept set and its spread)
    /// identical, so only t(df) and 1/sqrt(n) move — both downward.
    #[test]
    fn ci95_is_monotonically_nonincreasing_in_n_for_a_fixed_distribution(
        base in prop::collection::vec((1i64..1_000_000, -4i8..5), 4..9),
        cycles in 2usize..7
    ) {
        let one_cycle: Vec<f64> = base.iter().map(|&(m, e)| decode(m, e)).collect();
        let mut prev = f64::INFINITY;
        for m in 1..=cycles {
            let samples: Vec<f64> = one_cycle
                .iter()
                .copied()
                .cycle()
                .take(one_cycle.len() * m)
                .collect();
            let s = stats(&samples).expect("positive samples");
            prop_assert!(
                s.ci95 <= prev * (1.0 + 1e-12),
                "ci95 widened from {} to {} at {} cycles of {:?}",
                prev, s.ci95, m, one_cycle
            );
            prev = s.ci95;
        }
    }
}

//! Property tests for the cell statistics: on *any* finite sample
//! vector — including zeros, negatives and wild magnitudes — `stats`
//! must never fabricate a value, never emit a non-finite field, and
//! must account for every input sample as either kept or rejected.

use proptest::prelude::*;
use simbench_campaign::stats;

/// Decode a `(mantissa, exponent)` pair into a finite f64 spanning
/// ~25 decades either side of 1.0, zero and negatives included.
fn decode(m: i64, e: i8) -> f64 {
    m as f64 * 10f64.powi(e as i32)
}

proptest! {
    #[test]
    fn stats_accounts_for_every_sample_and_stays_finite(
        raw in prop::collection::vec((any::<i64>(), -12i8..13), 0..40)
    ) {
        let samples: Vec<f64> = raw.iter().map(|&(m, e)| decode(m, e)).collect();
        let valid = samples.iter().filter(|v| v.is_finite() && **v > 0.0).count();
        match stats(&samples) {
            None => prop_assert_eq!(valid, 0, "stats may only refuse all-invalid input"),
            Some(s) => {
                // Every sample is either kept or rejected — the invalid
                // ones counted among the rejected, never clamped into
                // the kept set.
                prop_assert_eq!(s.n + s.rejected, samples.len());
                prop_assert!(s.n >= 1 && s.n <= valid);
                // No field may be NaN or infinite, whatever the input.
                for (name, v) in [
                    ("min", s.min),
                    ("max", s.max),
                    ("mean", s.mean),
                    ("median", s.median),
                    ("stddev", s.stddev),
                    ("geomean", s.geomean),
                    ("ci95", s.ci95),
                ] {
                    prop_assert!(v.is_finite(), "{} = {} is not finite", name, v);
                }
                // Kept samples are real timings, so the location
                // estimates are strictly positive and ordered (mean and
                // geomean up to accumulated rounding).
                let fuzzy_le = |a: f64, b: f64| a <= b * (1.0 + 1e-9);
                prop_assert!(s.min > 0.0);
                prop_assert!(s.min <= s.median && s.median <= s.max);
                prop_assert!(fuzzy_le(s.min, s.mean) && fuzzy_le(s.mean, s.max));
                prop_assert!(fuzzy_le(s.min, s.geomean) && fuzzy_le(s.geomean, s.max));
                prop_assert!(s.stddev >= 0.0 && s.ci95 >= 0.0);
            }
        }
    }

    #[test]
    fn all_positive_vectors_always_yield_stats(
        raw in prop::collection::vec((1i64..1_000_000, -6i8..7), 1..20)
    ) {
        let samples: Vec<f64> = raw.iter().map(|&(m, e)| decode(m, e)).collect();
        let s = stats(&samples).expect("positive samples always produce stats");
        prop_assert_eq!(s.n + s.rejected, samples.len());
        // With nothing invalid, rejection can only come from the MAD
        // outlier pass, which keeps everything below four samples.
        if samples.len() < 4 {
            prop_assert_eq!(s.rejected, 0);
        }
    }
}

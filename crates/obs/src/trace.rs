//! Spans, instant events and Chrome trace-event export.
//!
//! Recording sites use the [`crate::span!`] / [`crate::event!`] macros
//! (or [`Span::enter`] / [`instant`] directly). When tracing is off the
//! whole site is a relaxed load and a branch. When on, each record is
//! one push onto the calling thread's ring (see [`crate::ring`]).
//!
//! [`chrome_trace_json`] drains every ring into the Chrome trace-event
//! JSON format (`{"traceEvents": [...]}` with `ph`/`ts`/`pid`/`tid`
//! records), directly loadable in Perfetto or `chrome://tracing`.

use std::fmt::Write as _;
use std::sync::OnceLock;
use std::time::Instant;

use crate::ring::{self, Event, Phase};

/// Nanoseconds since the process trace epoch (the first call fixes the
/// epoch). Monotonic and allocation-free after the first call.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// A scoped span: begin event on [`Span::enter`], end event on drop.
/// Disabled spans are inert — no ring access, no timestamp.
pub struct Span {
    name: &'static str,
    armed: bool,
}

impl Span {
    /// Open a span. One relaxed load + branch when tracing is off.
    #[inline]
    pub fn enter(name: &'static str) -> Span {
        let armed = crate::tracing_enabled();
        if armed {
            record(Phase::Begin, name);
        }
        Span { name, armed }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.armed {
            record(Phase::End, self.name);
        }
    }
}

/// Record an instant event. One relaxed load + branch when tracing is
/// off.
#[inline]
pub fn instant(name: &'static str) {
    if crate::tracing_enabled() {
        record(Phase::Instant, name);
    }
}

fn record(phase: Phase, name: &'static str) {
    let ts_ns = now_ns();
    ring::with_ring(|r| {
        r.push(Event { phase, name, ts_ns });
    });
}

/// Drain every thread's ring into Chrome trace-event JSON. `ts` is in
/// microseconds per the format; `tid` is the recording thread's dense
/// ring id. Threads that overflowed their ring get an instant
/// `obs.dropped_events` marker carrying the loss count.
pub fn chrome_trace_json() -> String {
    let mut out = String::from("{\"traceEvents\": [");
    let mut first = true;
    let mut push = |line: String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str("\n  ");
        out.push_str(&line);
    };
    for (tid, events, dropped) in ring::drain_all() {
        for e in &events {
            let ph = match e.phase {
                Phase::Begin => "B",
                Phase::End => "E",
                Phase::Instant => "i",
            };
            let mut line = String::new();
            let _ = write!(
                line,
                "{{\"name\": \"{}\", \"ph\": \"{ph}\", \"ts\": {:.3}, \"pid\": 1, \"tid\": {tid}",
                escape(e.name),
                e.ts_ns as f64 / 1000.0,
            );
            if e.phase == Phase::Instant {
                line.push_str(", \"s\": \"t\"");
            }
            line.push('}');
            push(line, &mut first);
        }
        if dropped > 0 {
            push(
                format!(
                    "{{\"name\": \"obs.dropped_events\", \"ph\": \"i\", \"ts\": 0.0, \
                     \"pid\": 1, \"tid\": {tid}, \"s\": \"t\", \"args\": {{\"count\": {dropped}}}}}"
                ),
                &mut first,
            );
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Minimal JSON string escaping (site names are static identifiers,
/// but the format must stay valid whatever they contain).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = crate::test_guard();
        crate::set_tracing(false);
        let before = ring::drain_all()
            .iter()
            .map(|(_, e, _)| e.len())
            .sum::<usize>();
        {
            let _span = crate::span!("test.disabled");
            crate::event!("test.disabled_instant");
        }
        let after = ring::drain_all()
            .iter()
            .map(|(_, e, _)| e.len())
            .sum::<usize>();
        assert_eq!(before, after);
    }

    #[test]
    fn enabled_spans_pair_begin_and_end() {
        let _guard = crate::test_guard();
        crate::set_tracing(true);
        {
            let _span = crate::span!("test.span");
            crate::event!("test.instant");
        }
        crate::set_tracing(false);
        let mine: Vec<Event> = ring::drain_all()
            .into_iter()
            .flat_map(|(_, e, _)| e)
            .filter(|e| e.name.starts_with("test."))
            .collect();
        let begins = mine
            .iter()
            .filter(|e| e.name == "test.span" && e.phase == Phase::Begin)
            .count();
        let ends = mine
            .iter()
            .filter(|e| e.name == "test.span" && e.phase == Phase::End)
            .count();
        assert!(begins >= 1, "begin recorded");
        assert_eq!(begins, ends, "every begin has its end");
        assert!(mine.iter().any(|e| e.name == "test.instant"));
    }

    #[test]
    fn chrome_trace_is_well_formed() {
        let _guard = crate::test_guard();
        crate::set_tracing(true);
        {
            let _span = crate::span!("test.export");
        }
        crate::set_tracing(false);
        let json = chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\": ["));
        assert!(json.trim_end().ends_with("]}"));
        assert!(json.contains("\"ph\": \"B\""));
        assert!(json.contains("\"ph\": \"E\""));
        assert!(json.contains("\"name\": \"test.export\""));
        // Timestamps are microseconds and monotone non-negative.
        assert!(!json.contains("\"ts\": -"));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("plain.name"), "plain.name");
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}

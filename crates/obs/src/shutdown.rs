//! Cooperative SIGINT/SIGTERM handling, dependency-free.
//!
//! [`install`] registers a handler for Ctrl-C (SIGINT) and SIGTERM
//! that does exactly one async-signal-safe thing: set a process-global
//! `AtomicBool`. Long-running loops (campaign runner, differ/analyze
//! sweeps) poll [`interrupted`] at safe points — between repetitions,
//! between subjects — finish what is in flight, persist a valid
//! partial artifact, and exit with code 130 (128 + SIGINT's number,
//! the shell convention for "killed by Ctrl-C").
//!
//! The handler is registered through the C `signal()` function
//! declared by hand — this crate (deliberately) depends on nothing,
//! libc included. `signal()` is in every Unix libm/libc we run on;
//! non-Unix builds compile [`install`] to a no-op and rely on the host
//! runtime's default behavior.

use std::sync::atomic::{AtomicBool, Ordering};

static INTERRUPTED: AtomicBool = AtomicBool::new(false);
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// Conventional exit code for an interrupted process (128 + SIGINT).
pub const EXIT_INTERRUPTED: i32 = 130;

#[cfg(unix)]
mod imp {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    /// Async-signal-safe by construction: one relaxed atomic store,
    /// no allocation, no locks, no formatting.
    extern "C" fn on_signal(_signum: i32) {
        super::INTERRUPTED.store(true, std::sync::atomic::Ordering::Relaxed);
    }

    pub(super) fn install_handlers() {
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn install_handlers() {}
}

/// Install the SIGINT/SIGTERM handler (idempotent, process-global).
pub fn install() {
    if !INSTALLED.swap(true, Ordering::Relaxed) {
        imp::install_handlers();
    }
}

/// Has SIGINT/SIGTERM arrived? One relaxed load — poll freely.
#[inline]
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::Relaxed)
}

/// Set the flag as if a signal had arrived (tests; also lets embedders
/// request a graceful stop programmatically).
pub fn trigger() {
    INTERRUPTED.store(true, Ordering::Relaxed);
}

/// Clear the flag (tests).
pub fn reset() {
    INTERRUPTED.store(false, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_set_and_reset() {
        let _guard = crate::test_guard();
        reset();
        assert!(!interrupted());
        trigger();
        assert!(interrupted());
        reset();
        assert!(!interrupted());
    }

    #[cfg(unix)]
    #[test]
    fn real_signal_sets_the_flag() {
        let _guard = crate::test_guard();
        reset();
        install();
        install(); // idempotent
        extern "C" {
            fn raise(signum: i32) -> i32;
        }
        // SIGTERM rather than SIGINT: a stray SIGINT default action in
        // a misconfigured harness would kill the test runner.
        unsafe { raise(15) };
        assert!(interrupted(), "SIGTERM must set the interrupt flag");
        reset();
    }
}

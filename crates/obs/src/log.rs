//! Leveled stderr logging shared by the campaign runner and the CLI.
//!
//! Three levels, set once from the command line (`--quiet` → warn
//! only, default → info, `-v` → debug) and read with one relaxed load
//! per log site. Status output goes to stderr; stdout stays reserved
//! for data (tables, reports, JSON), so piping results never captures
//! chatter. Use via the crate-root macros [`crate::warn!`],
//! [`crate::info!`] and [`crate::debug!`].

use std::sync::atomic::{AtomicU8, Ordering};

/// Warnings only (`--quiet`).
pub const LEVEL_QUIET: u8 = 0;
/// Warnings + status lines (default).
pub const LEVEL_INFO: u8 = 1;
/// Everything, including per-job progress (`-v`).
pub const LEVEL_DEBUG: u8 = 2;

static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_INFO);

/// Set the process log level.
pub fn set_level(level: u8) {
    LEVEL.store(level.min(LEVEL_DEBUG), Ordering::Relaxed);
}

/// The current level.
pub fn level() -> u8 {
    LEVEL.load(Ordering::Relaxed)
}

/// Would a message at `at` print? One relaxed load.
#[inline]
pub fn enabled(at: u8) -> bool {
    at <= LEVEL.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_gate_monotonically() {
        let _guard = crate::test_guard();
        set_level(LEVEL_QUIET);
        assert!(enabled(LEVEL_QUIET));
        assert!(!enabled(LEVEL_INFO));
        assert!(!enabled(LEVEL_DEBUG));
        set_level(LEVEL_INFO);
        assert!(enabled(LEVEL_INFO));
        assert!(!enabled(LEVEL_DEBUG));
        set_level(LEVEL_DEBUG);
        assert!(enabled(LEVEL_DEBUG));
        // Out-of-range requests clamp instead of inventing a level.
        set_level(250);
        assert_eq!(level(), LEVEL_DEBUG);
        set_level(LEVEL_INFO);
    }
}

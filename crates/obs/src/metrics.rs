//! Named monotonic counters and log₂-bucket histograms.
//!
//! Metrics are declared as `static` items at their recording site —
//! const-constructible, so declaring one costs nothing:
//!
//! ```
//! static TRANSLATIONS: simbench_obs::Counter =
//!     simbench_obs::Counter::new("dbt.translations");
//! TRANSLATIONS.add(1);
//! ```
//!
//! An update first checks the process-global metrics flag (relaxed
//! load + branch — the disabled path ends there), then a relaxed
//! `fetch_add`. A metric registers itself in the process registry on
//! its first *enabled* update, so the disabled path never touches the
//! registry lock and never allocates. [`snapshot`] reads the registry
//! into a name-sorted, deterministic form the campaign schema persists
//! as its `telemetry` block.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Histogram bucket count: bucket `b` (1..=64) counts values whose bit
/// length is `b`, i.e. `v` in `[2^(b-1), 2^b)`; bucket 0 counts zeros.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A named monotonic counter.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// Const constructor for `static` declarations.
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The counter's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add `n`. One relaxed load + branch when metrics are off.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !crate::metrics_enabled() {
            return;
        }
        self.value.fetch_add(n, Ordering::Relaxed);
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry().lock().unwrap().push(Metric::Counter(self));
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A named histogram over log₂ buckets: cheap enough for hot paths
/// (bit-length bucketing, one relaxed `fetch_add`), coarse enough to
/// stay fixed-size.
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    registered: AtomicBool,
}

impl Histogram {
    /// Const constructor for `static` declarations.
    pub const fn new(name: &'static str) -> Histogram {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            name,
            buckets: [ZERO; HISTOGRAM_BUCKETS],
            registered: AtomicBool::new(false),
        }
    }

    /// The histogram's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Record one observation. One relaxed load + branch when metrics
    /// are off.
    #[inline]
    pub fn observe(&'static self, v: u64) {
        if !crate::metrics_enabled() {
            return;
        }
        let bucket = (u64::BITS - v.leading_zeros()) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry().lock().unwrap().push(Metric::Histogram(self));
        }
    }

    /// Record a duration in nanoseconds.
    #[inline]
    pub fn observe_ns(&'static self, d: std::time::Duration) {
        self.observe(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Sparse read: `(bucket index, count)` for nonzero buckets.
    pub fn nonzero_buckets(&self) -> Vec<(u32, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let v = b.load(Ordering::Relaxed);
                (v != 0).then_some((i as u32, v))
            })
            .collect()
    }
}

enum Metric {
    Counter(&'static Counter),
    Histogram(&'static Histogram),
}

fn registry() -> &'static Mutex<Vec<Metric>> {
    static REGISTRY: OnceLock<Mutex<Vec<Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// A deterministic, name-sorted read of every registered metric.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// `(name, value)` for every counter that has been updated while
    /// metrics were enabled, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, sparse log₂ buckets)` per histogram, sorted by name.
    pub histograms: Vec<(String, Vec<(u32, u64)>)>,
}

impl Snapshot {
    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }
}

/// Snapshot the registry. Registration order is first-update order
/// (nondeterministic under threads), so the snapshot sorts by name.
pub fn snapshot() -> Snapshot {
    let registry = registry().lock().unwrap();
    let mut snap = Snapshot::default();
    for m in registry.iter() {
        match m {
            Metric::Counter(c) => snap.counters.push((c.name.to_string(), c.get())),
            Metric::Histogram(h) => snap
                .histograms
                .push((h.name.to_string(), h.nonzero_buckets())),
        }
    }
    snap.counters.sort();
    snap.histograms.sort();
    snap
}

/// The lower bound of histogram bucket `b`: 0 for bucket 0, else
/// `2^(b-1)`. Rendering helper for reports.
pub fn bucket_floor(b: u32) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << (b - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static TEST_COUNTER: Counter = Counter::new("test.counter");
    static TEST_HIST: Histogram = Histogram::new("test.hist");

    #[test]
    fn disabled_updates_are_dropped_and_unregistered() {
        let _guard = crate::test_guard();
        crate::set_metrics(false);
        static OFF: Counter = Counter::new("test.never_enabled");
        OFF.add(5);
        assert_eq!(OFF.get(), 0);
        assert!(
            !snapshot()
                .counters
                .iter()
                .any(|(n, _)| n == "test.never_enabled"),
            "a metric never updated while enabled must not register"
        );
    }

    #[test]
    fn enabled_counters_accumulate_and_register_once() {
        let _guard = crate::test_guard();
        crate::set_metrics(true);
        let before = TEST_COUNTER.get();
        TEST_COUNTER.add(2);
        TEST_COUNTER.add(3);
        crate::set_metrics(false);
        assert_eq!(TEST_COUNTER.get(), before + 5);
        let snap = snapshot();
        let hits = snap
            .counters
            .iter()
            .filter(|(n, _)| n == "test.counter")
            .count();
        assert_eq!(hits, 1, "registered exactly once: {snap:?}");
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let _guard = crate::test_guard();
        crate::set_metrics(true);
        for v in [0, 1, 1, 2, 3, 4, 1023, 1024, u64::MAX] {
            TEST_HIST.observe(v);
        }
        crate::set_metrics(false);
        let buckets: std::collections::BTreeMap<u32, u64> =
            TEST_HIST.nonzero_buckets().into_iter().collect();
        assert!(buckets[&0] >= 1, "zero bucket");
        assert!(buckets[&1] >= 2, "v=1 has bit length 1");
        assert!(buckets[&2] >= 2, "v=2,3");
        assert!(buckets[&3] >= 1, "v=4");
        assert!(buckets[&10] >= 1, "v=1023");
        assert!(buckets[&11] >= 1, "v=1024");
        assert!(buckets[&64] >= 1, "v=u64::MAX");
        let snap = snapshot();
        assert!(snap.histograms.iter().any(|(n, _)| n == "test.hist"));
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let _guard = crate::test_guard();
        crate::set_metrics(true);
        static A: Counter = Counter::new("test.zz_last");
        static B: Counter = Counter::new("test.aa_first");
        A.add(1);
        B.add(1);
        crate::set_metrics(false);
        let snap = snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn bucket_floor_bounds() {
        assert_eq!(bucket_floor(0), 0);
        assert_eq!(bucket_floor(1), 1);
        assert_eq!(bucket_floor(2), 2);
        assert_eq!(bucket_floor(11), 1024);
        assert_eq!(bucket_floor(64), 1 << 63);
    }
}

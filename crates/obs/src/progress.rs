//! Streaming per-cell campaign progress.
//!
//! `campaign run --progress` turns on human-readable per-cell records
//! on stderr; `--progress=ndjson` emits the machine-readable wire
//! format (one JSON object per line) that a future `campaign serve`
//! daemon will reuse. Three record kinds follow a cell's life:
//!
//! * `cell_start` — the cell's first repetition began executing;
//! * `cell_converge` — the adaptive scheduler judged the cell's
//!   relative CI half-width tight enough (adaptive runs only);
//! * `cell_finish` — the cell reached a terminal verdict.
//!
//! Emission sites live in the campaign runner and check the
//! process-global mode with one relaxed load, so the off path costs a
//! branch. Records are written with a single `eprintln!` each, which
//! locks stderr per line — concurrent workers interleave *lines*,
//! never bytes, keeping the NDJSON stream parseable.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::trace::escape;

/// How progress records are emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgressMode {
    /// No records (default).
    Off,
    /// Human-readable lines.
    Human,
    /// One JSON object per line (the `campaign serve` wire format).
    Ndjson,
}

static MODE: AtomicU8 = AtomicU8::new(0);

/// Set the process progress mode.
pub fn set_mode(mode: ProgressMode) {
    MODE.store(
        match mode {
            ProgressMode::Off => 0,
            ProgressMode::Human => 1,
            ProgressMode::Ndjson => 2,
        },
        Ordering::Relaxed,
    );
}

/// The current mode. One relaxed load.
#[inline]
pub fn mode() -> ProgressMode {
    match MODE.load(Ordering::Relaxed) {
        0 => ProgressMode::Off,
        1 => ProgressMode::Human,
        _ => ProgressMode::Ndjson,
    }
}

/// Identity of the cell a record describes.
#[derive(Debug, Clone, Copy)]
pub struct CellId<'a> {
    /// Guest id (`armlet` / `petix`).
    pub guest: &'a str,
    /// Engine id (`interp`, `dbt@v2.5.0-rc2`, ...).
    pub engine: &'a str,
    /// Workload id (`suite:System Call`, ...).
    pub workload: &'a str,
}

impl CellId<'_> {
    fn ndjson_head(&self, event: &str) -> String {
        format!(
            "{{\"event\": \"{event}\", \"guest\": \"{}\", \"engine\": \"{}\", \
             \"workload\": \"{}\"",
            escape(self.guest),
            escape(self.engine),
            escape(self.workload),
        )
    }
}

/// The cell's first repetition began executing.
pub fn cell_start(cell: CellId<'_>) {
    match mode() {
        ProgressMode::Off => {}
        ProgressMode::Human => {
            eprintln!(
                "[cell] start {}/{} {}",
                cell.guest, cell.engine, cell.workload
            );
        }
        ProgressMode::Ndjson => {
            eprintln!("{}}}", cell.ndjson_head("cell_start"));
        }
    }
}

/// The adaptive scheduler judged the cell converged after `reps`
/// repetitions at relative CI half-width `rel_ci95`.
pub fn cell_converge(cell: CellId<'_>, reps: u32, rel_ci95: f64) {
    match mode() {
        ProgressMode::Off => {}
        ProgressMode::Human => {
            eprintln!(
                "[cell] converged {}/{} {} after {reps} rep(s) (rel CI {:.3})",
                cell.guest, cell.engine, cell.workload, rel_ci95
            );
        }
        ProgressMode::Ndjson => {
            eprintln!(
                "{}, \"reps\": {reps}, \"rel_ci95\": {rel_ci95}}}",
                cell.ndjson_head("cell_converge")
            );
        }
    }
}

/// The cell reached a terminal verdict (`"ok"` / `"failed"`) after
/// `reps` completed repetitions.
pub fn cell_finish(cell: CellId<'_>, status: &str, reps: u32) {
    match mode() {
        ProgressMode::Off => {}
        ProgressMode::Human => {
            eprintln!(
                "[cell] finish {}/{} {} — {status}, {reps} rep(s)",
                cell.guest, cell.engine, cell.workload
            );
        }
        ProgressMode::Ndjson => {
            eprintln!(
                "{}, \"status\": \"{}\", \"reps\": {reps}}}",
                cell.ndjson_head("cell_finish"),
                escape(status),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_round_trips() {
        let _guard = crate::test_guard();
        for m in [ProgressMode::Human, ProgressMode::Ndjson, ProgressMode::Off] {
            set_mode(m);
            assert_eq!(mode(), m);
        }
    }

    #[test]
    fn ndjson_heads_are_escaped_json() {
        let cell = CellId {
            guest: "armlet",
            engine: "dbt@v2.5.0-rc2",
            workload: "suite:\"weird\"",
        };
        let head = cell.ndjson_head("cell_start");
        assert!(head.starts_with("{\"event\": \"cell_start\""));
        assert!(head.contains("\\\"weird\\\""));
    }
}

//! # simbench-obs
//!
//! Low-overhead telemetry for every layer of SimBench-rs: spans and
//! instant events on per-thread lock-free ring buffers ([`ring`],
//! [`trace`]), a registry of named monotonic counters and log-bucket
//! histograms ([`metrics`]), a leveled stderr logger ([`log`]), and
//! streaming per-cell campaign progress ([`progress`]).
//!
//! ## Zero-cost when off
//!
//! Telemetry is always compiled in and *disabled by default*. Every
//! recording site first checks a process-global `AtomicBool` with a
//! relaxed load — the disabled path is one load and one predictable
//! branch, touches no locks, and **never allocates** (per-thread rings
//! are created lazily on the first *enabled* record, metric
//! registration happens on the first *enabled* update). The repo's
//! counting-allocator test (`tests/alloc_free.rs`) pins this: the
//! engine hot loops allocate zero times with this crate linked in.
//!
//! Tracing ([`set_tracing`]) and metrics ([`set_metrics`]) are opt-in
//! per process — `simbench-harness campaign run --trace FILE` switches
//! both on — so default measurement runs are never perturbed.
//!
//! This crate deliberately depends on nothing, so every other crate in
//! the workspace (engines included) can depend on it.

use std::sync::atomic::{AtomicBool, Ordering};

pub mod log;
pub mod metrics;
pub mod progress;
pub mod ring;
pub mod shutdown;
pub mod trace;

pub use metrics::{Counter, Histogram};
pub use progress::ProgressMode;
pub use trace::Span;

static TRACING: AtomicBool = AtomicBool::new(false);
static METRICS: AtomicBool = AtomicBool::new(false);

/// Is span/event recording on? One relaxed load.
#[inline(always)]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Switch span/event recording on or off (process-global).
pub fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// Is metric recording on? One relaxed load.
#[inline(always)]
pub fn metrics_enabled() -> bool {
    METRICS.load(Ordering::Relaxed)
}

/// Switch metric recording on or off (process-global).
pub fn set_metrics(on: bool) {
    METRICS.store(on, Ordering::Relaxed);
}

/// Open a scoped span: records a begin event now and an end event when
/// the returned guard drops. Compiles to a relaxed load + branch when
/// tracing is off. Bind the guard: `let _span = obs::span!("name");`.
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::trace::Span::enter($name)
    };
}

/// Record an instant event (a point in time, no duration).
#[macro_export]
macro_rules! event {
    ($name:literal) => {
        $crate::trace::instant($name)
    };
}

/// Log at warn level: always printed, even under `--quiet`.
#[macro_export]
macro_rules! warn {
    ($($t:tt)*) => {{
        eprintln!($($t)*);
    }};
}

/// Log at info level: printed unless `--quiet`.
#[macro_export]
macro_rules! info {
    ($($t:tt)*) => {{
        if $crate::log::enabled($crate::log::LEVEL_INFO) {
            eprintln!($($t)*);
        }
    }};
}

/// Log at debug level: printed only under `-v`.
#[macro_export]
macro_rules! debug {
    ($($t:tt)*) => {{
        if $crate::log::enabled($crate::log::LEVEL_DEBUG) {
            eprintln!($($t)*);
        }
    }};
}

/// Serializes tests that touch the process-global enable flags,
/// registry or rings: libtest runs tests on parallel threads, and two
/// tests flipping [`set_metrics`] concurrently would observe each
/// other. Every such test takes this guard first.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_default_off_and_toggle() {
        let _guard = crate::test_guard();
        // Default-off is the zero-cost contract; toggles are observable.
        set_tracing(false);
        set_metrics(false);
        assert!(!tracing_enabled());
        assert!(!metrics_enabled());
        set_tracing(true);
        set_metrics(true);
        assert!(tracing_enabled());
        assert!(metrics_enabled());
        set_tracing(false);
        set_metrics(false);
    }
}

//! Per-thread lock-free event rings.
//!
//! Each recording thread owns one fixed-capacity ring, created lazily
//! on its first *enabled* record and registered in a process-global
//! list for draining. The writer never takes a lock and never
//! allocates after ring creation: a push is a sequence-number store, a
//! payload write and a release store. The ring keeps the most recent
//! [`RING_CAP`] events — campaign traces care about the recent window,
//! and an unbounded log would violate the allocation-free contract.
//!
//! Draining is seqlock-style: the drainer snapshots each slot and
//! accepts it only if the slot's sequence number is stable and marks a
//! completed write. In practice the harness drains after the worker
//! pool has been joined (a happens-before edge), so torn slots only
//! arise when a trace is pulled from a still-running campaign; those
//! slots are skipped, never misread.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Events kept per thread. Power of two so the index mask is one AND.
pub const RING_CAP: usize = 4096;

/// What kind of trace record an event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A span opened.
    Begin,
    /// A span closed.
    End,
    /// A point event with no duration.
    Instant,
}

/// One trace record. `Copy` and pointer-free so a ring slot write is a
/// plain store and a torn snapshot is harmless garbage, not UB-adjacent
/// pointer chasing.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Record kind.
    pub phase: Phase,
    /// Static site name (e.g. `"dbt.translate"`).
    pub name: &'static str,
    /// Nanoseconds since the process trace epoch.
    pub ts_ns: u64,
}

const EMPTY: Event = Event {
    phase: Phase::Instant,
    name: "",
    ts_ns: 0,
};

struct Slot {
    /// `2*i + 1` while slot `i` (mod cap) is being written, `2*i + 2`
    /// once the write completed. A drainer accepts a slot only when it
    /// reads the same completed value before and after the copy.
    seq: AtomicU64,
    event: UnsafeCell<Event>,
}

/// One thread's event ring. Only the owning thread writes; any thread
/// may drain.
pub struct Ring {
    slots: Box<[Slot]>,
    /// Next write position (monotonic; the slot index is `head % cap`).
    head: AtomicU64,
    /// Small dense id for trace output (`tid`).
    pub tid: u64,
}

// The UnsafeCell payloads are published via the per-slot seq protocol
// above; a torn read is detected and discarded.
unsafe impl Sync for Ring {}

impl Ring {
    fn new(tid: u64) -> Ring {
        let slots = (0..RING_CAP)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                event: UnsafeCell::new(EMPTY),
            })
            .collect();
        Ring {
            slots,
            head: AtomicU64::new(0),
            tid,
        }
    }

    /// Append an event, overwriting the oldest when full. Writer-side
    /// only: must be called by the ring's owning thread.
    pub fn push(&self, event: Event) {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(head as usize) & (RING_CAP - 1)];
        slot.seq.store(head * 2 + 1, Ordering::Relaxed);
        // Mark in progress before the payload store so a concurrent
        // drain can never accept a half-written slot.
        unsafe { *slot.event.get() = event };
        slot.seq.store(head * 2 + 2, Ordering::Release);
        self.head.store(head + 1, Ordering::Release);
    }

    /// Snapshot the retained events, oldest first, plus the count of
    /// events that fell off the ring. Slots caught mid-write are
    /// skipped.
    pub fn drain(&self) -> (Vec<Event>, u64) {
        let head = self.head.load(Ordering::Acquire);
        let dropped = head.saturating_sub(RING_CAP as u64);
        let mut out = Vec::with_capacity((head - dropped) as usize);
        for i in dropped..head {
            let slot = &self.slots[(i as usize) & (RING_CAP - 1)];
            let done = i * 2 + 2;
            if slot.seq.load(Ordering::Acquire) != done {
                continue;
            }
            let ev = unsafe { std::ptr::read_volatile(slot.event.get()) };
            if slot.seq.load(Ordering::Acquire) == done {
                out.push(ev);
            }
        }
        (out, dropped)
    }
}

fn rings() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    // Lazily bound so a thread that never records while tracing is
    // enabled never allocates a ring.
    static MY_RING: OnceLock<Arc<Ring>> = const { OnceLock::new() };
}

/// Run `f` with the calling thread's ring, creating and registering it
/// on first use. Only called from enabled recording paths.
pub(crate) fn with_ring(f: impl FnOnce(&Ring)) {
    MY_RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            static NEXT_TID: AtomicUsize = AtomicUsize::new(1);
            let ring = Arc::new(Ring::new(NEXT_TID.fetch_add(1, Ordering::Relaxed) as u64));
            rings().lock().unwrap().push(Arc::clone(&ring));
            ring
        });
        f(ring)
    });
}

/// Snapshot every registered ring: `(tid, events, dropped)` per
/// recording thread, in registration order.
pub fn drain_all() -> Vec<(u64, Vec<Event>, u64)> {
    let rings = rings().lock().unwrap();
    rings
        .iter()
        .map(|r| {
            let (events, dropped) = r.drain();
            (r.tid, events, dropped)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_most_recent_events_in_order() {
        let ring = Ring::new(7);
        for i in 0..10u64 {
            ring.push(Event {
                phase: Phase::Instant,
                name: "t",
                ts_ns: i,
            });
        }
        let (events, dropped) = ring.drain();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 10);
        assert!(events.windows(2).all(|w| w[0].ts_ns + 1 == w[1].ts_ns));
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let ring = Ring::new(1);
        for i in 0..(RING_CAP as u64 + 10) {
            ring.push(Event {
                phase: Phase::Begin,
                name: "x",
                ts_ns: i,
            });
        }
        let (events, dropped) = ring.drain();
        assert_eq!(dropped, 10);
        assert_eq!(events.len(), RING_CAP);
        assert_eq!(events[0].ts_ns, 10, "oldest surviving event");
        assert_eq!(events.last().unwrap().ts_ns, RING_CAP as u64 + 9);
    }

    #[test]
    fn drain_is_nondestructive() {
        let ring = Ring::new(2);
        ring.push(Event {
            phase: Phase::Instant,
            name: "once",
            ts_ns: 1,
        });
        assert_eq!(ring.drain().0.len(), 1);
        assert_eq!(ring.drain().0.len(), 1);
    }

    #[test]
    fn concurrent_drain_never_sees_torn_half_writes() {
        // A writer hammers the ring while a drainer snapshots it; every
        // accepted event must be one the writer actually completed
        // (name matches, ts within the written range).
        let ring = Arc::new(Ring::new(3));
        let w = Arc::clone(&ring);
        let writer = std::thread::spawn(move || {
            for i in 0..100_000u64 {
                w.push(Event {
                    phase: Phase::End,
                    name: "w",
                    ts_ns: i,
                });
            }
        });
        for _ in 0..50 {
            let (events, _) = ring.drain();
            for e in events {
                assert_eq!(e.name, "w");
                assert!(e.ts_ns < 100_000);
            }
        }
        writer.join().unwrap();
    }
}

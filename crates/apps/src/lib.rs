//! # simbench-apps
//!
//! Synthetic SPEC-CPU2006-INT-like guest application workloads.
//!
//! SPEC itself is proprietary and targets real ISAs, so — per the
//! substitution rules in `DESIGN.md` — these nine programs reproduce the
//! *instruction-mix shapes* that drive the paper's aggregate-benchmark
//! argument (Figs 2, 3 and 8): each app weights the simulator mechanisms
//! differently, so engine-version changes move them in different
//! directions, and their operation densities for SimBench's tested
//! operations are orders of magnitude below the micro-benchmarks' (the
//! Fig 3 SPEC column).
//!
//! | App | Modelled after | Dominant behaviour |
//! |-----|----------------|--------------------|
//! | `SjengLike` | 458.sjeng | indirect dispatch through function tables, branchy search |
//! | `McfLike` | 429.mcf | pointer chasing across many pages (TLB pressure) |
//! | `GccLike` | 403.gcc | mixed hashing, calls, rare syscalls |
//! | `Bzip2Like` | 401.bzip2 | tight byte-granular loops |
//! | `GobmkLike` | 445.gobmk | deep compare/branch chains |
//! | `HmmerLike` | 456.hmmer | regular array arithmetic (hot loops) |
//! | `LibquantumLike` | 462.libquantum | streaming array updates |
//! | `H264Like` | 464.h264ref | nested loops over byte blocks |
//! | `XalancLike` | 483.xalancbmk | virtual-call-style indirect control flow |

use simbench_core::asm::{PReg, PortableAsm};
use simbench_core::image::GuestImage;
use simbench_core::ir::{AluOp, Cond};
use simbench_core::PAGE_SIZE;
use simbench_suite::support::{emit_counted_loop, emit_phase_mark, Layout, Support};
use simbench_suite::BootSpec;

/// The synthetic application workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    /// Game-tree search: indirect dispatch + branches.
    SjengLike,
    /// Pointer chasing over a page-spread cycle.
    McfLike,
    /// Mixed compiler-ish work with rare syscalls.
    GccLike,
    /// Byte-loop compression kernel.
    Bzip2Like,
    /// Pattern-matching branch chains.
    GobmkLike,
    /// Dense array arithmetic.
    HmmerLike,
    /// Streaming quantum-register updates.
    LibquantumLike,
    /// Nested block transforms.
    H264Like,
    /// Virtual-dispatch-heavy traversal.
    XalancLike,
}

impl App {
    /// All apps, Fig 2/8 aggregate order.
    pub const ALL: [App; 9] = [
        App::SjengLike,
        App::McfLike,
        App::GccLike,
        App::Bzip2Like,
        App::GobmkLike,
        App::HmmerLike,
        App::LibquantumLike,
        App::H264Like,
        App::XalancLike,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            App::SjengLike => "sjeng-like",
            App::McfLike => "mcf-like",
            App::GccLike => "gcc-like",
            App::Bzip2Like => "bzip2-like",
            App::GobmkLike => "gobmk-like",
            App::HmmerLike => "hmmer-like",
            App::LibquantumLike => "libquantum-like",
            App::H264Like => "h264-like",
            App::XalancLike => "xalanc-like",
        }
    }

    /// Default outer iterations at scale 1 (tuned so each app retires a
    /// few tens of millions of instructions).
    pub fn default_iterations(self) -> u64 {
        match self {
            App::SjengLike => 400_000,
            App::McfLike => 300_000,
            App::GccLike => 400_000,
            App::Bzip2Like => 500_000,
            App::GobmkLike => 500_000,
            App::HmmerLike => 600_000,
            App::LibquantumLike => 500_000,
            App::H264Like => 400_000,
            App::XalancLike => 400_000,
        }
    }

    /// Iterations at a divisor, floored.
    pub fn scaled_iterations(self, scale: u64) -> u32 {
        (self.default_iterations() / scale.max(1)).clamp(64, u32::MAX as u64) as u32
    }
}

/// Number of nodes in the mcf-like pointer cycle (each on its own page).
pub const MCF_NODES: u32 = 2048;

/// Number of dispatch targets in the sjeng/xalanc-like tables.
const DISPATCH_FUNCS: usize = 8;

/// Assemble an application image for a support package.
pub fn build_app<S: Support>(s: &S, app: App, iterations: u32) -> GuestImage {
    s.build(BootSpec::default(), |a, s, layout| match app {
        App::SjengLike => sjeng_like(a, s, layout, iterations, false),
        App::XalancLike => sjeng_like(a, s, layout, iterations, true),
        App::McfLike => mcf_like(a, s, layout, iterations),
        App::GccLike => gcc_like(a, s, layout, iterations),
        App::Bzip2Like => byte_loops(a, layout, iterations, 3),
        App::H264Like => byte_loops(a, layout, iterations, 7),
        App::GobmkLike => gobmk_like(a, layout, iterations),
        App::HmmerLike => hmmer_like(a, layout, iterations),
        App::LibquantumLike => libquantum_like(a, layout, iterations),
    })
}

fn finish_kernel<A: PortableAsm>(a: &mut A, layout: &Layout) {
    emit_phase_mark(a, layout, 2);
    a.halt();
}

/// LCG step over `rd`: `rd = rd * 1664525 + 1013904223` (Numerical
/// Recipes constants), keeping the top `bits` bits.
fn lcg_step<A: PortableAsm>(a: &mut A, rd: PReg, scratch: PReg, bits: u32) {
    a.mov_imm(scratch, 1664525);
    a.alu_rr(AluOp::Mul, rd, rd, scratch);
    a.mov_imm(scratch, 1013904223);
    a.alu_rr(AluOp::Add, rd, rd, scratch);
    a.alu_ri(AluOp::Lsr, rd, rd, 32 - bits);
}

/// sjeng/xalanc-like: dispatch through a function-pointer table with a
/// pseudo-random index; `spread_pages` places targets on separate pages
/// (xalanc flavour) to stress inter-page indirect flow.
fn sjeng_like<S: Support>(
    a: &mut S::Asm,
    _s: &S,
    layout: &Layout,
    iterations: u32,
    spread_pages: bool,
) {
    let funcs: Vec<_> = (0..DISPATCH_FUNCS).map(|_| a.new_label()).collect();
    let table = a.new_label();
    let start = a.new_label();
    a.b(start);

    for (k, f) in funcs.iter().enumerate() {
        if spread_pages {
            a.align(PAGE_SIZE);
        } else {
            a.align(32);
        }
        a.bind(*f);
        // "Evaluator": a few ops and a conditional.
        a.alu_ri(AluOp::Add, PReg::E, PReg::E, (k as u32 + 1) * 3);
        a.alu_ri(AluOp::Eor, PReg::E, PReg::E, 0x55);
        a.cmp_ri(PReg::E, 1024);
        let skip = a.new_label();
        a.b_cond(Cond::Lt, skip);
        a.alu_ri(AluOp::Lsr, PReg::E, PReg::E, 1);
        a.bind(skip);
        a.ret();
    }

    a.align(16);
    a.bind(table);
    a.skip(4 * DISPATCH_FUNCS as u32);

    a.align(if spread_pages { PAGE_SIZE } else { 16 });
    a.bind(start);
    // Setup: fill the table, seed state.
    a.mov_label(PReg::B, table);
    for (k, f) in funcs.iter().enumerate() {
        a.mov_label(PReg::D, *f);
        a.store(PReg::D, PReg::B, 4 * k as i32);
    }
    a.mov_imm(PReg::A, 12345);
    a.mov_imm(PReg::E, 0);
    emit_phase_mark(a, layout, 1);
    emit_counted_loop(a, iterations, |a| {
        // Four dispatches per outer iteration.
        for _ in 0..4 {
            lcg_step(a, PReg::A, PReg::D, 3);
            a.alu_ri(AluOp::Lsl, PReg::D, PReg::A, 2);
            a.alu_rr(AluOp::Add, PReg::D, PReg::D, PReg::B);
            a.load(PReg::D, PReg::D, 0);
            a.call_reg(PReg::D);
        }
    });
    finish_kernel(a, layout);
}

/// mcf-like: build a pseudo-random pointer cycle with one node per page
/// of the cold region, then chase it.
fn mcf_like<S: Support>(a: &mut S::Asm, _s: &S, layout: &Layout, iterations: u32) {
    let cold = layout.cold;
    // Setup: node i (at cold + i*PAGE) points to node (i*787 + 0x261) & mask.
    a.mov_imm(PReg::A, 0); // i
    let fill = a.new_label();
    a.bind(fill);
    // B = &node[i]
    a.alu_ri(AluOp::Lsl, PReg::B, PReg::A, 12);
    a.mov_imm(PReg::D, cold);
    a.alu_rr(AluOp::Add, PReg::B, PReg::B, PReg::D);
    // E = successor index.
    a.alu_ri(AluOp::Add, PReg::E, PReg::A, 0x261);
    a.mov_imm(PReg::D, 787);
    a.alu_rr(AluOp::Mul, PReg::E, PReg::E, PReg::D);
    a.mov_imm(PReg::D, MCF_NODES - 1);
    a.alu_rr(AluOp::And, PReg::E, PReg::E, PReg::D);
    // E = &node[succ]
    a.alu_ri(AluOp::Lsl, PReg::E, PReg::E, 12);
    a.mov_imm(PReg::D, cold);
    a.alu_rr(AluOp::Add, PReg::E, PReg::E, PReg::D);
    a.store(PReg::E, PReg::B, 0);
    a.alu_ri(AluOp::Add, PReg::A, PReg::A, 1);
    a.cmp_ri(PReg::A, MCF_NODES);
    a.b_cond(Cond::Ne, fill);

    a.mov_imm(PReg::A, cold); // chase pointer
    emit_phase_mark(a, layout, 1);
    emit_counted_loop(a, iterations, |a| {
        // Eight dependent hops per outer iteration.
        for _ in 0..8 {
            a.load(PReg::A, PReg::A, 0);
        }
        // Light arithmetic between chains.
        a.alu_ri(AluOp::Add, PReg::E, PReg::E, 1);
    });
    finish_kernel(a, layout);
}

/// gcc-like: hash-table updates, helper calls, and a rare syscall (SPEC
/// syscall density is ~1.5e-6; every 1024th iteration here).
fn gcc_like<S: Support>(a: &mut S::Asm, _s: &S, layout: &Layout, iterations: u32) {
    let helper = a.new_label();
    let start = a.new_label();
    a.b(start);

    a.align(16);
    a.bind(helper);
    a.alu_ri(AluOp::Eor, PReg::E, PReg::E, 0x2A);
    a.alu_ri(AluOp::Ror, PReg::E, PReg::E, 7);
    a.ret();

    a.align(16);
    a.bind(start);
    a.mov_imm(PReg::A, 98765); // hash state
    a.mov_imm(PReg::B, layout.data);
    a.mov_imm(PReg::E, 0);
    emit_phase_mark(a, layout, 1);
    emit_counted_loop(a, iterations, |a| {
        // Hash, bump a 1024-slot table entry, call a helper, rarely trap.
        lcg_step(a, PReg::A, PReg::D, 10);
        a.alu_ri(AluOp::Lsl, PReg::D, PReg::A, 2);
        a.alu_rr(AluOp::Add, PReg::D, PReg::D, PReg::B);
        a.load(PReg::E, PReg::D, 0);
        a.alu_ri(AluOp::Add, PReg::E, PReg::E, 1);
        a.store(PReg::E, PReg::D, 0);
        a.call(helper);
        a.mov_imm(PReg::D, 1023);
        a.alu_rr(AluOp::And, PReg::D, PReg::C, PReg::D);
        a.cmp_ri(PReg::D, 0);
        let skip = a.new_label();
        a.b_cond(Cond::Ne, skip);
        a.svc(3);
        a.bind(skip);
    });
    finish_kernel(a, layout);
}

/// bzip2/h264-like: nested byte-granular loops over a data block.
/// `mix` varies the arithmetic so the two apps differ.
fn byte_loops<A: PortableAsm>(a: &mut A, layout: &Layout, iterations: u32, mix: u32) {
    a.mov_imm(PReg::A, layout.data);
    a.mov_imm(PReg::E, 0);
    emit_phase_mark(a, layout, 1);
    emit_counted_loop(a, iterations, |a| {
        // Inner loop: 16 byte load/modify/store steps.
        a.mov_imm(PReg::B, 16);
        let inner = a.new_label();
        a.bind(inner);
        a.load8(PReg::D, PReg::A, 0);
        a.alu_ri(AluOp::Add, PReg::D, PReg::D, mix);
        a.alu_ri(AluOp::Eor, PReg::D, PReg::D, mix * 5 + 1);
        a.store8(PReg::D, PReg::A, 64);
        a.alu_ri(AluOp::Add, PReg::A, PReg::A, 1);
        a.alu_ri(AluOp::Sub, PReg::B, PReg::B, 1);
        a.cmp_ri(PReg::B, 0);
        a.b_cond(Cond::Ne, inner);
        // Wrap the cursor every 256 outer iterations.
        a.alu_ri(AluOp::Sub, PReg::A, PReg::A, 16);
        a.alu_ri(AluOp::Add, PReg::E, PReg::E, 1);
        a.mov_imm(PReg::D, 0xFF);
        a.alu_rr(AluOp::And, PReg::D, PReg::E, PReg::D);
        a.cmp_ri(PReg::D, 0);
        let stay = a.new_label();
        a.b_cond(Cond::Ne, stay);
        a.mov_imm(PReg::A, layout.data);
        a.bind(stay);
    });
    finish_kernel(a, layout);
}

/// gobmk-like: long compare/branch chains over evolving state.
fn gobmk_like<A: PortableAsm>(a: &mut A, layout: &Layout, iterations: u32) {
    a.mov_imm(PReg::A, 0xBEEF);
    a.mov_imm(PReg::E, 0);
    emit_phase_mark(a, layout, 1);
    emit_counted_loop(a, iterations, |a| {
        lcg_step(a, PReg::A, PReg::D, 16);
        // A cascade of pattern tests.
        for (mask, delta) in [(0x3u32, 1u32), (0x7, 3), (0xF, 5), (0x1F, 7), (0x3F, 11)] {
            a.mov_imm(PReg::D, mask);
            a.alu_rr(AluOp::And, PReg::D, PReg::A, PReg::D);
            a.cmp_ri(PReg::D, mask / 2);
            let skip = a.new_label();
            a.b_cond(Cond::Ne, skip);
            a.alu_ri(AluOp::Add, PReg::E, PReg::E, delta);
            a.bind(skip);
        }
    });
    finish_kernel(a, layout);
}

/// hmmer-like: dense, regular array arithmetic — the hottest loops of
/// the set, dominated by in-page loads/stores and ALU ops.
fn hmmer_like<A: PortableAsm>(a: &mut A, layout: &Layout, iterations: u32) {
    a.mov_imm(PReg::A, layout.data);
    emit_phase_mark(a, layout, 1);
    emit_counted_loop(a, iterations, |a| {
        for k in 0..8 {
            let off = 4 * k;
            a.load(PReg::D, PReg::A, off);
            a.load(PReg::E, PReg::A, off + 32);
            a.alu_rr(AluOp::Add, PReg::D, PReg::D, PReg::E);
            a.alu_ri(AluOp::Lsr, PReg::E, PReg::D, 3);
            a.alu_rr(AluOp::Add, PReg::D, PReg::D, PReg::E);
            a.store(PReg::D, PReg::A, off + 64);
        }
    });
    finish_kernel(a, layout);
}

/// libquantum-like: streaming sequential updates over a multi-page
/// buffer (strided stores with moderate TLB pressure).
fn libquantum_like<A: PortableAsm>(a: &mut A, layout: &Layout, iterations: u32) {
    let cold = layout.cold;
    let span = 64 * PAGE_SIZE; // 256 KB working set
    a.mov_imm(PReg::A, cold);
    a.mov_imm(PReg::E, cold + span);
    emit_phase_mark(a, layout, 1);
    emit_counted_loop(a, iterations, |a| {
        for k in 0..4 {
            a.load(PReg::D, PReg::A, 16 * k);
            a.alu_ri(AluOp::Eor, PReg::D, PReg::D, 0x80);
            a.store(PReg::D, PReg::A, 16 * k);
        }
        a.alu_ri(AluOp::Add, PReg::A, PReg::A, 256);
        a.cmp_rr(PReg::A, PReg::E);
        let stay = a.new_label();
        a.b_cond(Cond::Ne, stay);
        a.mov_imm(PReg::A, cold);
        a.bind(stay);
    });
    finish_kernel(a, layout);
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbench_suite::{ArmletSupport, PetixSupport};

    #[test]
    fn all_apps_assemble_on_both_isas() {
        for app in App::ALL {
            let img = build_app(&ArmletSupport::new(), app, 64);
            assert!(img.size() > 0, "{app:?} armlet");
            let img = build_app(&PetixSupport::new(), app, 64);
            assert!(img.size() > 0, "{app:?} petix");
        }
    }

    #[test]
    fn names_and_defaults() {
        assert_eq!(App::ALL.len(), 9);
        for app in App::ALL {
            assert!(app.default_iterations() >= 100_000);
            assert!(!app.name().is_empty());
        }
        assert_eq!(App::McfLike.scaled_iterations(u64::MAX), 64);
    }
}

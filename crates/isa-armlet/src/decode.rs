//! armlet decoder: instruction words → shared micro-op IR.

use simbench_core::ir::{
    AluOp, Cond, DecodeError, Decoded, InsnClass, LinkKind, MemSize, Op, Operand, RetKind,
};

use crate::encoding::{INSN_BYTES, LR};

/// Static description of one top-nibble encoding class, exposed so
/// static sweeps (the analyzer's decoder-totality proof) can enumerate
/// the decode table instead of reverse-engineering it from probes.
#[derive(Debug, Clone, Copy)]
pub struct EncodingClass {
    /// Top nibble of the instruction word (bits 28–31).
    pub nibble: u8,
    /// Mnemonic family name.
    pub name: &'static str,
    /// True if at least one word with this top nibble decodes.
    pub populated: bool,
}

/// The armlet decode table at class granularity. Every instruction word
/// dispatches on its top nibble; a class marked unpopulated rejects all
/// 2^28 words beneath it.
pub const ENCODING_CLASSES: [EncodingClass; 16] = {
    const fn c(nibble: u8, name: &'static str, populated: bool) -> EncodingClass {
        EncodingClass {
            nibble,
            name,
            populated,
        }
    }
    [
        c(0x0, "udf", true),
        c(0x1, "alu-rr", true),
        c(0x2, "alu-ri", true),
        c(0x3, "movw", true),
        c(0x4, "movt", true),
        c(0x5, "ldst", true),
        c(0x6, "b", true),
        c(0x7, "bl", true),
        c(0x8, "bcc", true),
        c(0x9, "bx/blx", true),
        c(0xA, "system", true),
        c(0xB, "cmp/tst", true),
        c(0xC, "(reserved)", false),
        c(0xD, "(reserved)", false),
        c(0xE, "(reserved)", false),
        c(0xF, "(reserved)", false),
    ]
};

#[inline]
fn sext(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

/// Decode the word at `pc`.
///
/// # Errors
///
/// [`DecodeError`] for words in the undefined space — the engines convert
/// this into an architectural undefined-instruction exception (class 0
/// words decode as explicit [`Op::Udf`] instead, so that deliberately
/// planted UDFs are cheap for DBT engines to translate, mirroring QEMU's
/// "Translated" row in the paper's Fig 4).
pub fn decode(word: u32, pc: u32) -> Result<Decoded, DecodeError> {
    let next = pc.wrapping_add(INSN_BYTES);
    fn d(
        ops: impl Into<simbench_core::ir::OpList>,
        class: InsnClass,
    ) -> Result<Decoded, DecodeError> {
        Ok(Decoded::new(INSN_BYTES as u8, ops, class))
    }
    match word >> 28 {
        0x0 => d([Op::Udf], InsnClass::System),
        0x1 => {
            let op = AluOp::from_code(((word >> 24) & 0xF) as u8).ok_or(DecodeError { pc })?;
            let rd = ((word >> 20) & 0xF) as u8;
            let rn = ((word >> 16) & 0xF) as u8;
            let rm = ((word >> 12) & 0xF) as u8;
            let set_flags = word & (1 << 11) != 0;
            d(
                [Op::Alu {
                    op,
                    rd,
                    rn,
                    src: Operand::Reg(rm),
                    set_flags,
                }],
                InsnClass::Alu,
            )
        }
        0x2 => {
            let op = AluOp::from_code(((word >> 24) & 0xF) as u8).ok_or(DecodeError { pc })?;
            let rd = ((word >> 20) & 0xF) as u8;
            let rn = ((word >> 16) & 0xF) as u8;
            let set_flags = word & (1 << 15) != 0;
            let imm = word & 0xFFF;
            d(
                [Op::Alu {
                    op,
                    rd,
                    rn,
                    src: Operand::Imm(imm),
                    set_flags,
                }],
                InsnClass::Alu,
            )
        }
        0x3 => {
            let rd = ((word >> 20) & 0xF) as u8;
            let imm = word & 0xFFFF;
            d(
                [Op::Alu {
                    op: AluOp::Mov,
                    rd,
                    rn: 0,
                    src: Operand::Imm(imm),
                    set_flags: false,
                }],
                InsnClass::Alu,
            )
        }
        0x4 => {
            let rd = ((word >> 20) & 0xF) as u8;
            let imm = word & 0xFFFF;
            d(
                [
                    Op::Alu {
                        op: AluOp::And,
                        rd,
                        rn: rd,
                        src: Operand::Imm(0xFFFF),
                        set_flags: false,
                    },
                    Op::Alu {
                        op: AluOp::Orr,
                        rd,
                        rn: rd,
                        src: Operand::Imm(imm << 16),
                        set_flags: false,
                    },
                ],
                InsnClass::Alu,
            )
        }
        0x5 => {
            let load = word & (1 << 27) != 0;
            let size = match (word >> 25) & 0x3 {
                0 => MemSize::B4,
                1 => MemSize::B1,
                2 => MemSize::B2,
                _ => return Err(DecodeError { pc }),
            };
            let nonpriv = word & (1 << 24) != 0;
            let rd = ((word >> 20) & 0xF) as u8;
            let rn = ((word >> 16) & 0xF) as u8;
            let off = sext(word & 0xFFF, 12);
            let op = if load {
                Op::Load {
                    rd,
                    base: rn,
                    off,
                    size,
                    nonpriv,
                }
            } else {
                Op::Store {
                    rs: rd,
                    base: rn,
                    off,
                    size,
                    nonpriv,
                }
            };
            d([op], InsnClass::Mem)
        }
        0x6 => {
            let target = next.wrapping_add((sext(word & 0xFF_FFFF, 24) as u32) << 2);
            d([Op::Branch { target }], InsnClass::Branch)
        }
        0x7 => {
            let target = next.wrapping_add((sext(word & 0xFF_FFFF, 24) as u32) << 2);
            d(
                [Op::Call {
                    target,
                    ret: next,
                    link: LinkKind::Register(LR),
                }],
                InsnClass::Branch,
            )
        }
        0x8 => {
            let cond = Cond::from_code(((word >> 24) & 0xF) as u8).ok_or(DecodeError { pc })?;
            let target = next.wrapping_add((sext(word & 0xF_FFFF, 20) as u32) << 2);
            d([Op::BranchCond { cond, target }], InsnClass::Branch)
        }
        0x9 => {
            let rm = (word & 0xF) as u8;
            match (word >> 24) & 0xF {
                0 => {
                    // BX through the link register is architecturally a
                    // return; through anything else it is a plain
                    // indirect branch.
                    if rm == LR {
                        d([Op::Ret(RetKind::Register(LR))], InsnClass::Branch)
                    } else {
                        d([Op::BranchReg { rm }], InsnClass::Branch)
                    }
                }
                1 => d(
                    [Op::CallReg {
                        rm,
                        ret: next,
                        link: LinkKind::Register(LR),
                    }],
                    InsnClass::Branch,
                ),
                _ => Err(DecodeError { pc }),
            }
        }
        0xA => match (word >> 24) & 0xF {
            0 => d([Op::Svc((word & 0xFFFF) as u16)], InsnClass::System),
            1 => d([Op::Eret], InsnClass::System),
            2 => d([Op::Halt], InsnClass::System),
            3 => d([Op::Nop], InsnClass::Nop),
            4 => {
                let rt = ((word >> 20) & 0xF) as u8;
                let cp = ((word >> 16) & 0xF) as u8;
                let creg = ((word >> 12) & 0xF) as u8;
                d(
                    [Op::CopRead {
                        cp,
                        reg: creg,
                        rd: rt,
                    }],
                    InsnClass::System,
                )
            }
            5 => {
                let rt = ((word >> 20) & 0xF) as u8;
                let cp = ((word >> 16) & 0xF) as u8;
                let creg = ((word >> 12) & 0xF) as u8;
                d(
                    [Op::CopWrite {
                        cp,
                        reg: creg,
                        rs: rt,
                    }],
                    InsnClass::System,
                )
            }
            _ => Err(DecodeError { pc }),
        },
        0xB => {
            let rn = ((word >> 16) & 0xF) as u8;
            let rm = ((word >> 12) & 0xF) as u8;
            let imm = word & 0xFFF;
            match (word >> 24) & 0xF {
                0 => d(
                    [Op::Cmp {
                        rn,
                        src: Operand::Reg(rm),
                        is_tst: false,
                    }],
                    InsnClass::Alu,
                ),
                1 => d(
                    [Op::Cmp {
                        rn,
                        src: Operand::Imm(imm),
                        is_tst: false,
                    }],
                    InsnClass::Alu,
                ),
                2 => d(
                    [Op::Cmp {
                        rn,
                        src: Operand::Reg(rm),
                        is_tst: true,
                    }],
                    InsnClass::Alu,
                ),
                3 => d(
                    [Op::Cmp {
                        rn,
                        src: Operand::Imm(imm),
                        is_tst: true,
                    }],
                    InsnClass::Alu,
                ),
                _ => Err(DecodeError { pc }),
            }
        }
        _ => Err(DecodeError { pc }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding as enc;

    fn ops(word: u32) -> simbench_core::ir::OpList {
        decode(word, 0x8000).unwrap().ops
    }

    #[test]
    fn undef_space_decodes_to_udf_op() {
        assert_eq!(ops(0x0000_0000), vec![Op::Udf]);
        assert_eq!(ops(0x0DEA_DBEE), vec![Op::Udf]);
    }

    #[test]
    fn truly_invalid_classes_error() {
        assert!(decode(0xC000_0000, 0).is_err());
        assert!(decode(0xFFFF_FFFF, 0).is_err());
        assert!(decode(0xA600_0000, 0).is_err(), "bad system sub-op");
        assert!(decode(0x9200_0000, 0).is_err(), "bad reg-branch sub-op");
    }

    #[test]
    fn alu_forms() {
        let w = enc::alu_rr(AluOp::Add, 1, 2, 3, true);
        assert_eq!(
            ops(w),
            vec![Op::Alu {
                op: AluOp::Add,
                rd: 1,
                rn: 2,
                src: Operand::Reg(3),
                set_flags: true
            }]
        );
        let w = enc::alu_ri(AluOp::Eor, 4, 5, 0xABC, false);
        assert_eq!(
            ops(w),
            vec![Op::Alu {
                op: AluOp::Eor,
                rd: 4,
                rn: 5,
                src: Operand::Imm(0xABC),
                set_flags: false
            }]
        );
    }

    #[test]
    fn movw_movt() {
        let w = enc::movw(3, 0x1234);
        assert_eq!(
            ops(w),
            vec![Op::Alu {
                op: AluOp::Mov,
                rd: 3,
                rn: 0,
                src: Operand::Imm(0x1234),
                set_flags: false
            }]
        );
        let w = enc::movt(3, 0xBEEF);
        assert_eq!(
            ops(w),
            vec![
                Op::Alu {
                    op: AluOp::And,
                    rd: 3,
                    rn: 3,
                    src: Operand::Imm(0xFFFF),
                    set_flags: false
                },
                Op::Alu {
                    op: AluOp::Orr,
                    rd: 3,
                    rn: 3,
                    src: Operand::Imm(0xBEEF_0000),
                    set_flags: false
                },
            ]
        );
    }

    #[test]
    fn loads_and_stores() {
        let w = enc::ldst(true, enc::LsSize::Word, false, 1, 2, -8);
        assert_eq!(
            ops(w),
            vec![Op::Load {
                rd: 1,
                base: 2,
                off: -8,
                size: MemSize::B4,
                nonpriv: false
            }]
        );
        let w = enc::ldst(false, enc::LsSize::Byte, true, 3, 4, 5);
        assert_eq!(
            ops(w),
            vec![Op::Store {
                rs: 3,
                base: 4,
                off: 5,
                size: MemSize::B1,
                nonpriv: true
            }]
        );
        let w = enc::ldst(true, enc::LsSize::Half, false, 6, 7, 2);
        assert_eq!(
            ops(w),
            vec![Op::Load {
                rd: 6,
                base: 7,
                off: 2,
                size: MemSize::B2,
                nonpriv: false
            }]
        );
    }

    #[test]
    fn branches_resolve_pc_relative() {
        // b from 0x8000 to 0x8010.
        let w = enc::b(0x8000, 0x8010);
        assert_eq!(ops(w), vec![Op::Branch { target: 0x8010 }]);
        // bl records the return address.
        let w = enc::bl(0x8000, 0x7000);
        assert_eq!(
            ops(w),
            vec![Op::Call {
                target: 0x7000,
                ret: 0x8004,
                link: LinkKind::Register(enc::LR)
            }]
        );
        // Conditional.
        let w = enc::b_cond(Cond::Ne, 0x8000, 0x8000);
        assert_eq!(
            ops(w),
            vec![Op::BranchCond {
                cond: Cond::Ne,
                target: 0x8000
            }]
        );
    }

    #[test]
    fn register_branches() {
        assert_eq!(ops(enc::bx(3)), vec![Op::BranchReg { rm: 3 }]);
        assert_eq!(
            ops(enc::bx(enc::LR)),
            vec![Op::Ret(RetKind::Register(enc::LR))]
        );
        assert_eq!(
            ops(enc::blx(3)),
            vec![Op::CallReg {
                rm: 3,
                ret: 0x8004,
                link: LinkKind::Register(enc::LR)
            }]
        );
    }

    #[test]
    fn system_ops() {
        assert_eq!(ops(enc::svc(77)), vec![Op::Svc(77)]);
        assert_eq!(ops(enc::eret()), vec![Op::Eret]);
        assert_eq!(ops(enc::halt()), vec![Op::Halt]);
        assert_eq!(ops(enc::nop()), vec![Op::Nop]);
        assert_eq!(
            ops(enc::mrc(15, 3, 2)),
            vec![Op::CopRead {
                cp: 15,
                reg: 3,
                rd: 2
            }]
        );
        assert_eq!(
            ops(enc::mcr(14, 0, 7)),
            vec![Op::CopWrite {
                cp: 14,
                reg: 0,
                rs: 7
            }]
        );
    }

    #[test]
    fn compares() {
        assert_eq!(
            ops(enc::cmp_rr(1, 2)),
            vec![Op::Cmp {
                rn: 1,
                src: Operand::Reg(2),
                is_tst: false
            }]
        );
        assert_eq!(
            ops(enc::cmp_ri(1, 9)),
            vec![Op::Cmp {
                rn: 1,
                src: Operand::Imm(9),
                is_tst: false
            }]
        );
        assert_eq!(
            ops(enc::tst_rr(1, 2)),
            vec![Op::Cmp {
                rn: 1,
                src: Operand::Reg(2),
                is_tst: true
            }]
        );
        assert_eq!(
            ops(enc::tst_ri(1, 9)),
            vec![Op::Cmp {
                rn: 1,
                src: Operand::Imm(9),
                is_tst: true
            }]
        );
    }

    #[test]
    fn encoding_class_table_matches_decoder() {
        for (i, class) in ENCODING_CLASSES.iter().enumerate() {
            assert_eq!(class.nibble as usize, i);
            // The canonical word of every populated class decodes; an
            // unpopulated class rejects its canonical word (and, per the
            // decoder's top-level dispatch, every other word below it).
            let canonical = u32::from(class.nibble) << 28;
            assert_eq!(
                decode(canonical, 0).is_ok(),
                class.populated,
                "class {:#x} ({})",
                class.nibble,
                class.name
            );
        }
    }

    #[test]
    fn smc_pattern_is_harmless() {
        for imm in [0u32, 1, 0xFFFF] {
            let got = ops(enc::SMC_NOP_WORD | imm);
            assert_eq!(
                got,
                vec![Op::Alu {
                    op: AluOp::Mov,
                    rd: 5,
                    rn: 0,
                    src: Operand::Imm(imm),
                    set_flags: false
                }]
            );
        }
    }
}

//! armlet decoder: instruction words → shared micro-op IR.
//!
//! The decoder body is generated from the declarative encoding spec in
//! `spec/armlet.isa` by `simbench-isa-spec` (committed as
//! `src/decode_gen.rs`); this module is the stable public surface. The
//! original hand-written decoder survives as [`crate::decode_ref`], the
//! oracle for the differential proptests and the exhaustive 2^32 sweep
//! proving the two agree.

use simbench_core::ir::{DecodeError, Decoded};

/// Static description of one top-nibble encoding class, exposed so
/// static sweeps (the analyzer's decoder-totality proof) can enumerate
/// the decode table instead of reverse-engineering it from probes.
#[derive(Debug, Clone, Copy)]
pub struct EncodingClass {
    /// Top nibble of the instruction word (bits 28–31).
    pub nibble: u8,
    /// Mnemonic family name.
    pub name: &'static str,
    /// True if at least one word with this top nibble decodes.
    pub populated: bool,
}

/// The armlet decode table at class granularity. Every instruction word
/// dispatches on its top nibble; a class marked unpopulated rejects all
/// 2^28 words beneath it.
pub const ENCODING_CLASSES: [EncodingClass; 16] = {
    const fn c(nibble: u8, name: &'static str, populated: bool) -> EncodingClass {
        EncodingClass {
            nibble,
            name,
            populated,
        }
    }
    [
        c(0x0, "udf", true),
        c(0x1, "alu-rr", true),
        c(0x2, "alu-ri", true),
        c(0x3, "movw", true),
        c(0x4, "movt", true),
        c(0x5, "ldst", true),
        c(0x6, "b", true),
        c(0x7, "bl", true),
        c(0x8, "bcc", true),
        c(0x9, "bx/blx", true),
        c(0xA, "system", true),
        c(0xB, "cmp/tst", true),
        c(0xC, "(reserved)", false),
        c(0xD, "(reserved)", false),
        c(0xE, "(reserved)", false),
        c(0xF, "(reserved)", false),
    ]
};

/// Decode the word at `pc`.
///
/// # Errors
///
/// [`DecodeError`] for words in the undefined space — the engines convert
/// this into an architectural undefined-instruction exception (class 0
/// words decode as explicit `Op::Udf` instead, so that deliberately
/// planted UDFs are cheap for DBT engines to translate, mirroring QEMU's
/// "Translated" row in the paper's Fig 4).
#[inline]
pub fn decode(word: u32, pc: u32) -> Result<Decoded, DecodeError> {
    crate::decode_gen::decode(word, pc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding as enc;
    use simbench_core::ir::{AluOp, Cond, LinkKind, MemSize, Op, Operand, RetKind};

    fn ops(word: u32) -> simbench_core::ir::OpList {
        decode(word, 0x8000).unwrap().ops
    }

    #[test]
    fn undef_space_decodes_to_udf_op() {
        assert_eq!(ops(0x0000_0000), vec![Op::Udf]);
        assert_eq!(ops(0x0DEA_DBEE), vec![Op::Udf]);
    }

    #[test]
    fn truly_invalid_classes_error() {
        assert!(decode(0xC000_0000, 0).is_err());
        assert!(decode(0xFFFF_FFFF, 0).is_err());
        assert!(decode(0xA600_0000, 0).is_err(), "bad system sub-op");
        assert!(decode(0x9200_0000, 0).is_err(), "bad reg-branch sub-op");
    }

    #[test]
    fn alu_forms() {
        let w = enc::alu_rr(AluOp::Add, 1, 2, 3, true);
        assert_eq!(
            ops(w),
            vec![Op::Alu {
                op: AluOp::Add,
                rd: 1,
                rn: 2,
                src: Operand::Reg(3),
                set_flags: true
            }]
        );
        let w = enc::alu_ri(AluOp::Eor, 4, 5, 0xABC, false);
        assert_eq!(
            ops(w),
            vec![Op::Alu {
                op: AluOp::Eor,
                rd: 4,
                rn: 5,
                src: Operand::Imm(0xABC),
                set_flags: false
            }]
        );
    }

    #[test]
    fn movw_movt() {
        let w = enc::movw(3, 0x1234);
        assert_eq!(
            ops(w),
            vec![Op::Alu {
                op: AluOp::Mov,
                rd: 3,
                rn: 0,
                src: Operand::Imm(0x1234),
                set_flags: false
            }]
        );
        let w = enc::movt(3, 0xBEEF);
        assert_eq!(
            ops(w),
            vec![
                Op::Alu {
                    op: AluOp::And,
                    rd: 3,
                    rn: 3,
                    src: Operand::Imm(0xFFFF),
                    set_flags: false
                },
                Op::Alu {
                    op: AluOp::Orr,
                    rd: 3,
                    rn: 3,
                    src: Operand::Imm(0xBEEF_0000),
                    set_flags: false
                },
            ]
        );
    }

    #[test]
    fn loads_and_stores() {
        let w = enc::ldst(true, enc::LsSize::Word, false, 1, 2, -8);
        assert_eq!(
            ops(w),
            vec![Op::Load {
                rd: 1,
                base: 2,
                off: -8,
                size: MemSize::B4,
                nonpriv: false
            }]
        );
        let w = enc::ldst(false, enc::LsSize::Byte, true, 3, 4, 5);
        assert_eq!(
            ops(w),
            vec![Op::Store {
                rs: 3,
                base: 4,
                off: 5,
                size: MemSize::B1,
                nonpriv: true
            }]
        );
        let w = enc::ldst(true, enc::LsSize::Half, false, 6, 7, 2);
        assert_eq!(
            ops(w),
            vec![Op::Load {
                rd: 6,
                base: 7,
                off: 2,
                size: MemSize::B2,
                nonpriv: false
            }]
        );
    }

    #[test]
    fn branches_resolve_pc_relative() {
        // b from 0x8000 to 0x8010.
        let w = enc::b(0x8000, 0x8010);
        assert_eq!(ops(w), vec![Op::Branch { target: 0x8010 }]);
        // bl records the return address.
        let w = enc::bl(0x8000, 0x7000);
        assert_eq!(
            ops(w),
            vec![Op::Call {
                target: 0x7000,
                ret: 0x8004,
                link: LinkKind::Register(enc::LR)
            }]
        );
        // Conditional.
        let w = enc::b_cond(Cond::Ne, 0x8000, 0x8000);
        assert_eq!(
            ops(w),
            vec![Op::BranchCond {
                cond: Cond::Ne,
                target: 0x8000
            }]
        );
    }

    #[test]
    fn register_branches() {
        assert_eq!(ops(enc::bx(3)), vec![Op::BranchReg { rm: 3 }]);
        assert_eq!(
            ops(enc::bx(enc::LR)),
            vec![Op::Ret(RetKind::Register(enc::LR))]
        );
        assert_eq!(
            ops(enc::blx(3)),
            vec![Op::CallReg {
                rm: 3,
                ret: 0x8004,
                link: LinkKind::Register(enc::LR)
            }]
        );
    }

    #[test]
    fn system_ops() {
        assert_eq!(ops(enc::svc(77)), vec![Op::Svc(77)]);
        assert_eq!(ops(enc::eret()), vec![Op::Eret]);
        assert_eq!(ops(enc::halt()), vec![Op::Halt]);
        assert_eq!(ops(enc::nop()), vec![Op::Nop]);
        assert_eq!(
            ops(enc::mrc(15, 3, 2)),
            vec![Op::CopRead {
                cp: 15,
                reg: 3,
                rd: 2
            }]
        );
        assert_eq!(
            ops(enc::mcr(14, 0, 7)),
            vec![Op::CopWrite {
                cp: 14,
                reg: 0,
                rs: 7
            }]
        );
    }

    #[test]
    fn compares() {
        assert_eq!(
            ops(enc::cmp_rr(1, 2)),
            vec![Op::Cmp {
                rn: 1,
                src: Operand::Reg(2),
                is_tst: false
            }]
        );
        assert_eq!(
            ops(enc::cmp_ri(1, 9)),
            vec![Op::Cmp {
                rn: 1,
                src: Operand::Imm(9),
                is_tst: false
            }]
        );
        assert_eq!(
            ops(enc::tst_rr(1, 2)),
            vec![Op::Cmp {
                rn: 1,
                src: Operand::Reg(2),
                is_tst: true
            }]
        );
        assert_eq!(
            ops(enc::tst_ri(1, 9)),
            vec![Op::Cmp {
                rn: 1,
                src: Operand::Imm(9),
                is_tst: true
            }]
        );
    }

    #[test]
    fn encoding_class_table_matches_decoder() {
        for (i, class) in ENCODING_CLASSES.iter().enumerate() {
            assert_eq!(class.nibble as usize, i);
            // The canonical word of every populated class decodes; an
            // unpopulated class rejects its canonical word (and, per the
            // decoder's top-level dispatch, every other word below it).
            let canonical = u32::from(class.nibble) << 28;
            assert_eq!(
                decode(canonical, 0).is_ok(),
                class.populated,
                "class {:#x} ({})",
                class.nibble,
                class.name
            );
        }
    }

    #[test]
    fn smc_pattern_is_harmless() {
        for imm in [0u32, 1, 0xFFFF] {
            let got = ops(enc::SMC_NOP_WORD | imm);
            assert_eq!(
                got,
                vec![Op::Alu {
                    op: AluOp::Mov,
                    rd: 5,
                    rn: 0,
                    src: Operand::Imm(imm),
                    set_flags: false
                }]
            );
        }
    }

    #[test]
    fn generated_decoder_matches_reference_on_canonical_words() {
        // Spot-check the generated ≡ hand-written contract on one word
        // per encoding class (the exhaustive proof lives in the
        // analyzer's release-mode 2^32 sweep and the proptest in
        // tests/prop_decode_equiv.rs).
        for class in ENCODING_CLASSES {
            let w = u32::from(class.nibble) << 28 | 0x0012_3456;
            let (a, b) = (decode(w, 0x8000), crate::decode_ref::decode(w, 0x8000));
            assert_eq!(a, b, "word {w:#010x}");
        }
    }
}

//! armlet system state: control coprocessor (cp15), banked-state
//! coprocessor (cp14), and exception entry/exit.

use simbench_core::cpu::{CpuState, Flags, Privilege, Status};
use simbench_core::fault::{CopFault, ExcInfo, ExceptionKind};
use simbench_core::isa::CopEffect;

/// cp15: system control coprocessor number.
pub const CP_SYS: u8 = 15;
/// cp14: banked-state / debug coprocessor number.
pub const CP_BANK: u8 = 14;

/// cp15 register indices.
pub mod cp15 {
    /// Read-only ID register.
    pub const MIDR: u8 = 0;
    /// System control: bit 0 enables the MMU.
    pub const SCTLR: u8 = 1;
    /// Translation table base.
    pub const TTBR: u8 = 2;
    /// Domain access control — the paper's designated "safe"
    /// side-effect-free coprocessor read on ARM.
    pub const DACR: u8 = 3;
    /// Fault status (why the last abort happened).
    pub const FSR: u8 = 5;
    /// Fault address.
    pub const FAR: u8 = 6;
    /// Write: invalidate entire TLB.
    pub const TLBIALL: u8 = 7;
    /// Write: invalidate the TLB entry covering the written address.
    pub const TLBIMVA: u8 = 8;
    /// Vector table base.
    pub const VBAR: u8 = 12;
}

/// cp14 register indices.
pub mod cp14 {
    /// Banked return address (read/write from handlers).
    pub const SAVED_PC: u8 = 0;
    /// Banked status word (see [`super::ArmletSys::encode_status`]).
    pub const SAVED_STATUS: u8 = 1;
    /// Handler scratch register 0.
    pub const SCRATCH0: u8 = 2;
    /// Handler scratch register 1.
    pub const SCRATCH1: u8 = 3;
    /// Status control: bit 0 = IRQ enable for the *current* status.
    pub const IRQ_CTL: u8 = 4;
}

/// Value of the MIDR identification register.
pub const MIDR_VALUE: u32 = 0x4152_4D01; // "ARM" + v1

/// Spacing of vector table entries in bytes (room for a long branch).
pub const VECTOR_STRIDE: u32 = 0x20;

/// armlet system-register file.
#[derive(Debug, Clone)]
pub struct ArmletSys {
    /// System control register (bit 0: MMU enable).
    pub sctlr: u32,
    /// Translation table base (16 KB aligned).
    pub ttbr: u32,
    /// Domain access control register.
    pub dacr: u32,
    /// Fault status register.
    pub fsr: u32,
    /// Fault address register.
    pub far: u32,
    /// Vector base address register.
    pub vbar: u32,
    /// Banked exception return address.
    pub saved_pc: u32,
    /// Banked status.
    pub saved_status: Status,
    /// Handler scratch registers.
    pub scratch: [u32; 2],
}

impl Default for ArmletSys {
    fn default() -> Self {
        ArmletSys {
            sctlr: 0,
            ttbr: 0,
            // All sixteen domains in "client" mode (AP bits checked).
            dacr: 0x5555_5555,
            fsr: 0,
            far: 0,
            vbar: 0,
            saved_pc: 0,
            saved_status: Status::default(),
            scratch: [0; 2],
        }
    }
}

impl ArmletSys {
    /// True when address translation is on.
    pub fn mmu_enabled(&self) -> bool {
        self.sctlr & 1 != 0
    }

    /// Encode a [`Status`] into the cp14 word format:
    /// `N<<31 | Z<<30 | C<<29 | V<<28 | IRQ<<7 | USER<<4`.
    pub fn encode_status(s: Status) -> u32 {
        (s.flags.n as u32) << 31
            | (s.flags.z as u32) << 30
            | (s.flags.c as u32) << 29
            | (s.flags.v as u32) << 28
            | (s.irq_enabled as u32) << 7
            | ((s.level == Privilege::User) as u32) << 4
    }

    /// Decode the cp14 status word format.
    pub fn decode_status(w: u32) -> Status {
        Status {
            flags: Flags {
                n: w & (1 << 31) != 0,
                z: w & (1 << 30) != 0,
                c: w & (1 << 29) != 0,
                v: w & (1 << 28) != 0,
            },
            irq_enabled: w & (1 << 7) != 0,
            level: if w & (1 << 4) != 0 {
                Privilege::User
            } else {
                Privilege::Kernel
            },
        }
    }

    /// Coprocessor read.
    ///
    /// # Errors
    ///
    /// [`CopFault`] for unknown coprocessors or registers.
    pub fn cop_read(&mut self, _cpu: &CpuState, cp: u8, reg: u8) -> Result<u32, CopFault> {
        match (cp, reg) {
            (CP_SYS, cp15::MIDR) => Ok(MIDR_VALUE),
            (CP_SYS, cp15::SCTLR) => Ok(self.sctlr),
            (CP_SYS, cp15::TTBR) => Ok(self.ttbr),
            (CP_SYS, cp15::DACR) => Ok(self.dacr),
            (CP_SYS, cp15::FSR) => Ok(self.fsr),
            (CP_SYS, cp15::FAR) => Ok(self.far),
            (CP_SYS, cp15::VBAR) => Ok(self.vbar),
            (CP_BANK, cp14::SAVED_PC) => Ok(self.saved_pc),
            (CP_BANK, cp14::SAVED_STATUS) => Ok(Self::encode_status(self.saved_status)),
            (CP_BANK, cp14::SCRATCH0) => Ok(self.scratch[0]),
            (CP_BANK, cp14::SCRATCH1) => Ok(self.scratch[1]),
            _ => Err(CopFault),
        }
    }

    /// Coprocessor write, returning the engine-visible effect.
    ///
    /// # Errors
    ///
    /// [`CopFault`] for unknown coprocessors or read-only registers.
    pub fn cop_write(
        &mut self,
        cpu: &mut CpuState,
        cp: u8,
        reg: u8,
        val: u32,
    ) -> Result<CopEffect, CopFault> {
        match (cp, reg) {
            (CP_SYS, cp15::SCTLR) => {
                let was = self.sctlr;
                self.sctlr = val;
                Ok(if (was ^ val) & 1 != 0 {
                    CopEffect::ContextChanged
                } else {
                    CopEffect::None
                })
            }
            (CP_SYS, cp15::TTBR) => {
                self.ttbr = val;
                Ok(CopEffect::ContextChanged)
            }
            (CP_SYS, cp15::DACR) => {
                self.dacr = val;
                // Domain results are baked into cached TLB entries.
                Ok(CopEffect::ContextChanged)
            }
            (CP_SYS, cp15::TLBIALL) => Ok(CopEffect::TlbFlush),
            (CP_SYS, cp15::TLBIMVA) => Ok(CopEffect::TlbInvPage(val)),
            (CP_SYS, cp15::VBAR) => {
                self.vbar = val;
                Ok(CopEffect::None)
            }
            (CP_BANK, cp14::SAVED_PC) => {
                self.saved_pc = val;
                Ok(CopEffect::None)
            }
            (CP_BANK, cp14::SAVED_STATUS) => {
                self.saved_status = Self::decode_status(val);
                Ok(CopEffect::None)
            }
            (CP_BANK, cp14::SCRATCH0) => {
                self.scratch[0] = val;
                Ok(CopEffect::None)
            }
            (CP_BANK, cp14::SCRATCH1) => {
                self.scratch[1] = val;
                Ok(CopEffect::None)
            }
            (CP_BANK, cp14::IRQ_CTL) => {
                cpu.irq_enabled = val & 1 != 0;
                Ok(CopEffect::None)
            }
            _ => Err(CopFault),
        }
    }

    /// Take an exception: bank status, mask IRQs, enter kernel mode, and
    /// return the vector address.
    pub fn enter_exception(
        &mut self,
        cpu: &mut CpuState,
        kind: ExceptionKind,
        info: ExcInfo,
        return_pc: u32,
    ) -> u32 {
        self.saved_pc = return_pc;
        self.saved_status = cpu.status();
        if matches!(
            kind,
            ExceptionKind::DataAbort | ExceptionKind::PrefetchAbort
        ) {
            self.far = info.fault_addr;
            self.fsr = 1; // simplified status: "fault occurred"
        }
        cpu.level = Privilege::Kernel;
        cpu.irq_enabled = false;
        self.vbar + VECTOR_STRIDE * kind.vector_index() as u32
    }

    /// Return from exception: restore banked status, resume at the banked
    /// PC.
    pub fn leave_exception(&mut self, cpu: &mut CpuState) -> u32 {
        cpu.restore_status(self.saved_status);
        self.saved_pc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_word_round_trip() {
        let s = Status {
            flags: Flags {
                n: true,
                z: false,
                c: true,
                v: false,
            },
            level: Privilege::User,
            irq_enabled: true,
        };
        assert_eq!(ArmletSys::decode_status(ArmletSys::encode_status(s)), s);
        let k = Status::default();
        assert_eq!(ArmletSys::decode_status(ArmletSys::encode_status(k)), k);
    }

    #[test]
    fn cop15_registers() {
        let mut sys = ArmletSys::default();
        let mut cpu = CpuState::at_reset(0);
        assert_eq!(sys.cop_read(&cpu, CP_SYS, cp15::MIDR).unwrap(), MIDR_VALUE);
        assert_eq!(
            sys.cop_write(&mut cpu, CP_SYS, cp15::TTBR, 0x10000)
                .unwrap(),
            CopEffect::ContextChanged
        );
        assert_eq!(sys.cop_read(&cpu, CP_SYS, cp15::TTBR).unwrap(), 0x10000);
        assert_eq!(
            sys.cop_write(&mut cpu, CP_SYS, cp15::TLBIALL, 0).unwrap(),
            CopEffect::TlbFlush
        );
        assert_eq!(
            sys.cop_write(&mut cpu, CP_SYS, cp15::TLBIMVA, 0x1234)
                .unwrap(),
            CopEffect::TlbInvPage(0x1234)
        );
        // MIDR is read-only.
        assert!(sys.cop_write(&mut cpu, CP_SYS, cp15::MIDR, 0).is_err());
        // Unknown coprocessor.
        assert!(sys.cop_read(&cpu, 7, 0).is_err());
    }

    #[test]
    fn mmu_enable_toggles_context() {
        let mut sys = ArmletSys::default();
        let mut cpu = CpuState::at_reset(0);
        assert!(!sys.mmu_enabled());
        assert_eq!(
            sys.cop_write(&mut cpu, CP_SYS, cp15::SCTLR, 1).unwrap(),
            CopEffect::ContextChanged
        );
        assert!(sys.mmu_enabled());
        // Rewriting the same value: no context change.
        assert_eq!(
            sys.cop_write(&mut cpu, CP_SYS, cp15::SCTLR, 1).unwrap(),
            CopEffect::None
        );
    }

    #[test]
    fn irq_ctl_writes_cpu() {
        let mut sys = ArmletSys::default();
        let mut cpu = CpuState::at_reset(0);
        sys.cop_write(&mut cpu, CP_BANK, cp14::IRQ_CTL, 1).unwrap();
        assert!(cpu.irq_enabled);
        sys.cop_write(&mut cpu, CP_BANK, cp14::IRQ_CTL, 0).unwrap();
        assert!(!cpu.irq_enabled);
    }

    #[test]
    fn exception_entry_and_return() {
        let mut sys = ArmletSys {
            vbar: 0x100,
            ..Default::default()
        };
        let mut cpu = CpuState::at_reset(0x8000);
        cpu.irq_enabled = true;
        cpu.flags.z = true;

        let fault = ExcInfo {
            fault_addr: 0xDEAD_0000,
            syscall_no: 0,
        };
        let vec = sys.enter_exception(&mut cpu, ExceptionKind::DataAbort, fault, 0x8004);
        assert_eq!(vec, 0x100 + VECTOR_STRIDE * 2);
        assert!(!cpu.irq_enabled, "IRQs masked on entry");
        assert_eq!(sys.far, 0xDEAD_0000);
        assert_eq!(sys.saved_pc, 0x8004);

        let resume = sys.leave_exception(&mut cpu);
        assert_eq!(resume, 0x8004);
        assert!(cpu.irq_enabled, "status restored");
        assert!(cpu.flags.z);
    }

    #[test]
    fn handler_scratch_registers() {
        let mut sys = ArmletSys::default();
        let mut cpu = CpuState::at_reset(0);
        sys.cop_write(&mut cpu, CP_BANK, cp14::SCRATCH0, 7).unwrap();
        sys.cop_write(&mut cpu, CP_BANK, cp14::SCRATCH1, 9).unwrap();
        assert_eq!(sys.cop_read(&cpu, CP_BANK, cp14::SCRATCH0).unwrap(), 7);
        assert_eq!(sys.cop_read(&cpu, CP_BANK, cp14::SCRATCH1).unwrap(), 9);
    }
}

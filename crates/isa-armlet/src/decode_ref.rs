//! Hand-written armlet reference decoder.
//!
//! The production decoder is generated from `spec/armlet.isa` (see
//! [`crate::decode_gen`]). This module keeps the original hand-written
//! implementation as an independently-derived oracle: differential
//! proptests and the exhaustive 2^32 sweep in
//! `crates/analyzer/tests/decode_sweep.rs` prove the generated decoder
//! agrees with it on every word. It is not part of any engine's hot
//! path.

use simbench_core::ir::{
    AluOp, Cond, DecodeError, Decoded, InsnClass, LinkKind, MemSize, Op, Operand, RetKind,
};

use crate::encoding::{INSN_BYTES, LR};

#[inline]
fn sext(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

/// Decode the word at `pc` (reference implementation).
///
/// # Errors
///
/// [`DecodeError`] for words in the undefined space.
pub fn decode(word: u32, pc: u32) -> Result<Decoded, DecodeError> {
    let next = pc.wrapping_add(INSN_BYTES);
    fn d(
        ops: impl Into<simbench_core::ir::OpList>,
        class: InsnClass,
    ) -> Result<Decoded, DecodeError> {
        Ok(Decoded::new(INSN_BYTES as u8, ops, class))
    }
    match word >> 28 {
        0x0 => d([Op::Udf], InsnClass::System),
        0x1 => {
            let op = AluOp::from_code(((word >> 24) & 0xF) as u8).ok_or(DecodeError { pc })?;
            let rd = ((word >> 20) & 0xF) as u8;
            let rn = ((word >> 16) & 0xF) as u8;
            let rm = ((word >> 12) & 0xF) as u8;
            let set_flags = word & (1 << 11) != 0;
            d(
                [Op::Alu {
                    op,
                    rd,
                    rn,
                    src: Operand::Reg(rm),
                    set_flags,
                }],
                InsnClass::Alu,
            )
        }
        0x2 => {
            let op = AluOp::from_code(((word >> 24) & 0xF) as u8).ok_or(DecodeError { pc })?;
            let rd = ((word >> 20) & 0xF) as u8;
            let rn = ((word >> 16) & 0xF) as u8;
            let set_flags = word & (1 << 15) != 0;
            let imm = word & 0xFFF;
            d(
                [Op::Alu {
                    op,
                    rd,
                    rn,
                    src: Operand::Imm(imm),
                    set_flags,
                }],
                InsnClass::Alu,
            )
        }
        0x3 => {
            let rd = ((word >> 20) & 0xF) as u8;
            let imm = word & 0xFFFF;
            d(
                [Op::Alu {
                    op: AluOp::Mov,
                    rd,
                    rn: 0,
                    src: Operand::Imm(imm),
                    set_flags: false,
                }],
                InsnClass::Alu,
            )
        }
        0x4 => {
            let rd = ((word >> 20) & 0xF) as u8;
            let imm = word & 0xFFFF;
            d(
                [
                    Op::Alu {
                        op: AluOp::And,
                        rd,
                        rn: rd,
                        src: Operand::Imm(0xFFFF),
                        set_flags: false,
                    },
                    Op::Alu {
                        op: AluOp::Orr,
                        rd,
                        rn: rd,
                        src: Operand::Imm(imm << 16),
                        set_flags: false,
                    },
                ],
                InsnClass::Alu,
            )
        }
        0x5 => {
            let load = word & (1 << 27) != 0;
            let size = match (word >> 25) & 0x3 {
                0 => MemSize::B4,
                1 => MemSize::B1,
                2 => MemSize::B2,
                _ => return Err(DecodeError { pc }),
            };
            let nonpriv = word & (1 << 24) != 0;
            let rd = ((word >> 20) & 0xF) as u8;
            let rn = ((word >> 16) & 0xF) as u8;
            let off = sext(word & 0xFFF, 12);
            let op = if load {
                Op::Load {
                    rd,
                    base: rn,
                    off,
                    size,
                    nonpriv,
                }
            } else {
                Op::Store {
                    rs: rd,
                    base: rn,
                    off,
                    size,
                    nonpriv,
                }
            };
            d([op], InsnClass::Mem)
        }
        0x6 => {
            let target = next.wrapping_add((sext(word & 0xFF_FFFF, 24) as u32) << 2);
            d([Op::Branch { target }], InsnClass::Branch)
        }
        0x7 => {
            let target = next.wrapping_add((sext(word & 0xFF_FFFF, 24) as u32) << 2);
            d(
                [Op::Call {
                    target,
                    ret: next,
                    link: LinkKind::Register(LR),
                }],
                InsnClass::Branch,
            )
        }
        0x8 => {
            let cond = Cond::from_code(((word >> 24) & 0xF) as u8).ok_or(DecodeError { pc })?;
            let target = next.wrapping_add((sext(word & 0xF_FFFF, 20) as u32) << 2);
            d([Op::BranchCond { cond, target }], InsnClass::Branch)
        }
        0x9 => {
            let rm = (word & 0xF) as u8;
            match (word >> 24) & 0xF {
                0 => {
                    // BX through the link register is architecturally a
                    // return; through anything else it is a plain
                    // indirect branch.
                    if rm == LR {
                        d([Op::Ret(RetKind::Register(LR))], InsnClass::Branch)
                    } else {
                        d([Op::BranchReg { rm }], InsnClass::Branch)
                    }
                }
                1 => d(
                    [Op::CallReg {
                        rm,
                        ret: next,
                        link: LinkKind::Register(LR),
                    }],
                    InsnClass::Branch,
                ),
                _ => Err(DecodeError { pc }),
            }
        }
        0xA => match (word >> 24) & 0xF {
            0 => d([Op::Svc((word & 0xFFFF) as u16)], InsnClass::System),
            1 => d([Op::Eret], InsnClass::System),
            2 => d([Op::Halt], InsnClass::System),
            3 => d([Op::Nop], InsnClass::Nop),
            4 => {
                let rt = ((word >> 20) & 0xF) as u8;
                let cp = ((word >> 16) & 0xF) as u8;
                let creg = ((word >> 12) & 0xF) as u8;
                d(
                    [Op::CopRead {
                        cp,
                        reg: creg,
                        rd: rt,
                    }],
                    InsnClass::System,
                )
            }
            5 => {
                let rt = ((word >> 20) & 0xF) as u8;
                let cp = ((word >> 16) & 0xF) as u8;
                let creg = ((word >> 12) & 0xF) as u8;
                d(
                    [Op::CopWrite {
                        cp,
                        reg: creg,
                        rs: rt,
                    }],
                    InsnClass::System,
                )
            }
            _ => Err(DecodeError { pc }),
        },
        0xB => {
            let rn = ((word >> 16) & 0xF) as u8;
            let rm = ((word >> 12) & 0xF) as u8;
            let imm = word & 0xFFF;
            match (word >> 24) & 0xF {
                0 => d(
                    [Op::Cmp {
                        rn,
                        src: Operand::Reg(rm),
                        is_tst: false,
                    }],
                    InsnClass::Alu,
                ),
                1 => d(
                    [Op::Cmp {
                        rn,
                        src: Operand::Imm(imm),
                        is_tst: false,
                    }],
                    InsnClass::Alu,
                ),
                2 => d(
                    [Op::Cmp {
                        rn,
                        src: Operand::Reg(rm),
                        is_tst: true,
                    }],
                    InsnClass::Alu,
                ),
                3 => d(
                    [Op::Cmp {
                        rn,
                        src: Operand::Imm(imm),
                        is_tst: true,
                    }],
                    InsnClass::Alu,
                ),
                _ => Err(DecodeError { pc }),
            }
        }
        _ => Err(DecodeError { pc }),
    }
}

//! # simbench-isa-armlet
//!
//! The `armlet` guest architecture: a 32-bit fixed-width RISC ISA
//! modelled on ARMv5, with sixteen GPRs, a two-format MMU (1 MB
//! sections and 4 KB coarse pages) guarded by domain access control, a
//! CP15-style
//! system coprocessor, CP14 banked exception state, non-privileged
//! loads/stores (`ldrt`/`strt`), and an architecturally undefined
//! instruction space — everything the SimBench suite's ARM port
//! exercises.
//!
//! ## Example
//!
//! ```
//! use simbench_core::asm::{PReg, PortableAsm};
//! use simbench_core::isa::Isa;
//! use simbench_isa_armlet::{Armlet, ArmletAsm};
//!
//! let mut a = ArmletAsm::new();
//! a.org(0x8000);
//! a.mov_imm(PReg::A, 41);
//! a.alu_ri(simbench_core::ir::AluOp::Add, PReg::A, PReg::A, 1);
//! a.halt();
//! let image = a.finish(0x8000);
//!
//! // The first word decodes back to a mov.
//! let w = u32::from_le_bytes(image.sections[0].bytes[0..4].try_into().unwrap());
//! let decoded = Armlet::decode(&w.to_le_bytes(), 0x8000).unwrap();
//! assert_eq!(decoded.len, 4);
//! ```

pub mod asm;
pub mod decode;
pub mod decode_gen;
#[doc(hidden)]
pub mod decode_ref;
pub mod encoding;
pub mod mmu;
pub mod sys;

pub use asm::ArmletAsm;
pub use mmu::{Access, TableBuilder};
pub use sys::ArmletSys;

use simbench_core::bus::Bus;
use simbench_core::cpu::CpuState;
use simbench_core::fault::{CopFault, ExcInfo, ExceptionKind};
use simbench_core::ir::{DecodeError, Decoded};
use simbench_core::isa::{CopEffect, Isa};
use simbench_core::mmu::WalkResult;

/// The armlet architecture (implements [`Isa`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Armlet;

impl Isa for Armlet {
    const NAME: &'static str = "armlet";
    const MAX_INSN_BYTES: usize = 4;
    const GPRS: usize = 16;
    type Sys = ArmletSys;

    fn decode(bytes: &[u8], pc: u32) -> Result<Decoded, DecodeError> {
        if bytes.len() < 4 {
            return Err(DecodeError { pc });
        }
        let word = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        decode::decode(word, pc)
    }

    fn mmu_enabled(sys: &Self::Sys) -> bool {
        sys.mmu_enabled()
    }

    fn walk<B: Bus>(sys: &Self::Sys, bus: &mut B, va: u32) -> WalkResult {
        mmu::walk(sys, bus, va)
    }

    fn cop_read(cpu: &CpuState, sys: &mut Self::Sys, cp: u8, reg: u8) -> Result<u32, CopFault> {
        sys.cop_read(cpu, cp, reg)
    }

    fn cop_write(
        cpu: &mut CpuState,
        sys: &mut Self::Sys,
        cp: u8,
        reg: u8,
        val: u32,
    ) -> Result<CopEffect, CopFault> {
        sys.cop_write(cpu, cp, reg, val)
    }

    fn enter_exception(
        cpu: &mut CpuState,
        sys: &mut Self::Sys,
        kind: ExceptionKind,
        info: ExcInfo,
        return_pc: u32,
    ) -> u32 {
        sys.enter_exception(cpu, kind, info, return_pc)
    }

    fn leave_exception(cpu: &mut CpuState, sys: &mut Self::Sys) -> u32 {
        sys.leave_exception(cpu)
    }

    fn sys_regs(sys: &Self::Sys, visit: &mut dyn FnMut(&'static str, u32)) {
        visit("sctlr", sys.sctlr);
        visit("ttbr", sys.ttbr);
        visit("dacr", sys.dacr);
        visit("fsr", sys.fsr);
        visit("far", sys.far);
        visit("vbar", sys.vbar);
        visit("saved_pc", sys.saved_pc);
        visit("saved_status", ArmletSys::encode_status(sys.saved_status));
        visit("scratch0", sys.scratch[0]);
        visit("scratch1", sys.scratch[1]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isa_constants() {
        assert_eq!(Armlet::NAME, "armlet");
        assert_eq!(Armlet::MAX_INSN_BYTES, 4);
        assert_eq!(Armlet::GPRS, 16);
    }

    #[test]
    fn short_fetch_is_decode_error() {
        assert!(Armlet::decode(&[0x00, 0x00], 0x8000).is_err());
    }
}

//! armlet instruction encodings.
//!
//! armlet is a 32-bit fixed-width RISC ISA modelled on ARMv5. Words are
//! little-endian in memory. The major class lives in bits `[31:28]`:
//!
//! | Class | Format |
//! |-------|--------|
//! | `0x0` | architecturally undefined space |
//! | `0x1` | ALU register: `op[27:24] rd[23:20] rn[19:16] rm[15:12] S[11]` |
//! | `0x2` | ALU immediate: `op[27:24] rd[23:20] rn[19:16] S[15] imm12[11:0]` |
//! | `0x3` | MOVW: `rd[23:20] imm16[15:0]` (rd = imm16) |
//! | `0x4` | MOVT: `rd[23:20] imm16[15:0]` (rd[31:16] = imm16) |
//! | `0x5` | LDR/STR: `L[27] sz[26:25] T[24] rd[23:20] rn[19:16] simm12[11:0]` |
//! | `0x6` | B: `simm24[23:0]` words relative to pc+4 |
//! | `0x7` | BL: `simm24[23:0]` words relative to pc+4, lr = pc+4 |
//! | `0x8` | B\<cond\>: `cond[27:24] simm20[19:0]` words relative to pc+4 |
//! | `0x9` | register branch: `sub[27:24]` 0=BX rm\[3:0\], 1=BLX rm\[3:0\] |
//! | `0xA` | system: `sub[27:24]` 0=SVC imm16, 1=ERET, 2=HALT, 3=NOP, 4=MRC, 5=MCR |
//! | `0xB` | compare: `sub[27:24]` 0=CMP reg, 1=CMP imm12, 2=TST reg, 3=TST imm12 |
//! | `0xC`–`0xF` | undefined |
//!
//! MRC/MCR fields: `rt[23:20] cp[19:16] creg[15:12]`.

use simbench_core::ir::{AluOp, Cond};

/// armlet instruction width in bytes.
pub const INSN_BYTES: u32 = 4;

/// Register number of the stack pointer by software convention.
pub const SP: u8 = 13;
/// Register number of the link register (written by BL/BLX).
pub const LR: u8 = 14;

/// A guaranteed-undefined instruction word (class 0).
pub const UDF_WORD: u32 = 0x0000_0000;

/// The self-modifying-code filler: `movw r5, #0`. Rewriting a function's
/// first word with `SMC_NOP_WORD | imm16` is always a valid, harmless
/// instruction.
pub const SMC_NOP_WORD: u32 = 0x3050_0000;

const fn cls(c: u32) -> u32 {
    c << 28
}

/// ALU register form.
pub fn alu_rr(op: AluOp, rd: u8, rn: u8, rm: u8, set_flags: bool) -> u32 {
    cls(1)
        | (op.code() as u32) << 24
        | (rd as u32) << 20
        | (rn as u32) << 16
        | (rm as u32) << 12
        | (set_flags as u32) << 11
}

/// ALU immediate form.
///
/// # Panics
///
/// Panics if `imm > 4095`.
pub fn alu_ri(op: AluOp, rd: u8, rn: u8, imm: u32, set_flags: bool) -> u32 {
    assert!(imm <= 0xFFF, "alu immediate {imm:#x} exceeds 12 bits");
    cls(2)
        | (op.code() as u32) << 24
        | (rd as u32) << 20
        | (rn as u32) << 16
        | (set_flags as u32) << 15
        | imm
}

/// MOVW: load a 16-bit immediate, zeroing the upper half.
pub fn movw(rd: u8, imm16: u32) -> u32 {
    assert!(imm16 <= 0xFFFF);
    cls(3) | (rd as u32) << 20 | imm16
}

/// MOVT: replace the upper 16 bits, keeping the lower half.
pub fn movt(rd: u8, imm16: u32) -> u32 {
    assert!(imm16 <= 0xFFFF);
    cls(4) | (rd as u32) << 20 | imm16
}

/// Memory access size field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LsSize {
    /// 32-bit word.
    Word = 0,
    /// 8-bit byte.
    Byte = 1,
    /// 16-bit halfword.
    Half = 2,
}

/// Load/store.
///
/// # Panics
///
/// Panics if `off` is outside ±2047.
pub fn ldst(load: bool, size: LsSize, nonpriv: bool, rd: u8, rn: u8, off: i32) -> u32 {
    assert!(
        (-2048..=2047).contains(&off),
        "ldst offset {off} exceeds simm12"
    );
    cls(5)
        | (load as u32) << 27
        | (size as u32) << 25
        | (nonpriv as u32) << 24
        | (rd as u32) << 20
        | (rn as u32) << 16
        | ((off as u32) & 0xFFF)
}

fn word_disp(from_pc: u32, target: u32, bits: u32, what: &str) -> u32 {
    let delta = target.wrapping_sub(from_pc.wrapping_add(4)) as i32;
    assert!(delta % 4 == 0, "{what} target not word aligned");
    let words = delta >> 2;
    let lim = 1i32 << (bits - 1);
    assert!(
        (-lim..lim).contains(&words),
        "{what} displacement {words} exceeds {bits} bits"
    );
    (words as u32) & ((1 << bits) - 1)
}

/// Unconditional direct branch from `pc` to `target`.
pub fn b(pc: u32, target: u32) -> u32 {
    cls(6) | word_disp(pc, target, 24, "b")
}

/// Branch and link from `pc` to `target`.
pub fn bl(pc: u32, target: u32) -> u32 {
    cls(7) | word_disp(pc, target, 24, "bl")
}

/// Conditional branch from `pc` to `target`.
pub fn b_cond(cond: Cond, pc: u32, target: u32) -> u32 {
    cls(8) | (cond.code() as u32) << 24 | word_disp(pc, target, 20, "b<cond>")
}

/// Indirect branch to the address in `rm`.
pub fn bx(rm: u8) -> u32 {
    cls(9) | (rm as u32)
}

/// Indirect call to the address in `rm` (lr = pc+4).
pub fn blx(rm: u8) -> u32 {
    cls(9) | 1 << 24 | (rm as u32)
}

/// System call.
pub fn svc(imm16: u16) -> u32 {
    cls(0xA) | imm16 as u32
}

/// Exception return.
pub fn eret() -> u32 {
    cls(0xA) | 1 << 24
}

/// Stop the machine.
pub fn halt() -> u32 {
    cls(0xA) | 2 << 24
}

/// No operation.
pub fn nop() -> u32 {
    cls(0xA) | 3 << 24
}

/// Coprocessor read: `rt = cp[creg]`.
pub fn mrc(cp: u8, creg: u8, rt: u8) -> u32 {
    cls(0xA) | 4 << 24 | (rt as u32) << 20 | (cp as u32) << 16 | (creg as u32) << 12
}

/// Coprocessor write: `cp[creg] = rt`.
pub fn mcr(cp: u8, creg: u8, rt: u8) -> u32 {
    cls(0xA) | 5 << 24 | (rt as u32) << 20 | (cp as u32) << 16 | (creg as u32) << 12
}

/// Compare registers (`rn - rm`, flags only).
pub fn cmp_rr(rn: u8, rm: u8) -> u32 {
    cls(0xB) | (rn as u32) << 16 | (rm as u32) << 12
}

/// Compare with immediate.
pub fn cmp_ri(rn: u8, imm: u32) -> u32 {
    assert!(imm <= 0xFFF);
    cls(0xB) | 1 << 24 | (rn as u32) << 16 | imm
}

/// Test registers (`rn & rm`, flags only).
pub fn tst_rr(rn: u8, rm: u8) -> u32 {
    cls(0xB) | 2 << 24 | (rn as u32) << 16 | (rm as u32) << 12
}

/// Test with immediate.
pub fn tst_ri(rn: u8, imm: u32) -> u32 {
    assert!(imm <= 0xFFF);
    cls(0xB) | 3 << 24 | (rn as u32) << 16 | imm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_distinct() {
        assert_eq!(alu_rr(AluOp::Add, 0, 0, 0, false) >> 28, 1);
        assert_eq!(alu_ri(AluOp::Add, 0, 0, 0, false) >> 28, 2);
        assert_eq!(movw(0, 0) >> 28, 3);
        assert_eq!(movt(0, 0) >> 28, 4);
        assert_eq!(ldst(true, LsSize::Word, false, 0, 0, 0) >> 28, 5);
        assert_eq!(b(0, 4) >> 28, 6);
        assert_eq!(bl(0, 4) >> 28, 7);
        assert_eq!(b_cond(Cond::Eq, 0, 4) >> 28, 8);
        assert_eq!(bx(0) >> 28, 9);
        assert_eq!(svc(0) >> 28, 0xA);
    }

    #[test]
    fn branch_displacements() {
        // Forward: from pc=0 to target=12 → (12 - 4)/4 = 2 words.
        assert_eq!(b(0, 12) & 0xFF_FFFF, 2);
        // Backward: from pc=12 to target=0 → (0 - 16)/4 = -4.
        assert_eq!(b(12, 0) & 0xFF_FFFF, 0xFF_FFFC);
        // Self-loop: -1 word.
        assert_eq!(b(8, 8) & 0xFF_FFFF, 0xFF_FFFF);
    }

    #[test]
    #[should_panic(expected = "exceeds 12 bits")]
    fn alu_imm_range_checked() {
        alu_ri(AluOp::Add, 0, 0, 4096, false);
    }

    #[test]
    #[should_panic(expected = "not word aligned")]
    fn unaligned_branch_target() {
        b(0, 6);
    }

    #[test]
    fn ldst_offset_sign() {
        let w = ldst(true, LsSize::Word, false, 1, 2, -4);
        assert_eq!(w & 0xFFF, 0xFFC);
        let w = ldst(false, LsSize::Byte, true, 1, 2, 7);
        assert_eq!(w & 0xFFF, 7);
        assert_ne!(w & (1 << 24), 0, "T bit set");
    }

    #[test]
    fn smc_word_is_movw_r5() {
        assert_eq!(SMC_NOP_WORD, movw(5, 0));
    }
}

//! armlet MMU: ARMv5-style two-format page tables (1 MB sections and
//! 4 KB coarse pages) with domains, plus a host-side table builder.
//!
//! The deliberately rich walk — two formats, domain access control,
//! four-value AP decode, XN — mirrors the paper's observation that
//! QEMU's ARM page-table lookups are "quite complex" because the
//! architecture is; the petix walker is a plain two-level x86-style walk
//! by contrast.

use simbench_core::bus::Bus;
use simbench_core::fault::{AccessKind, FaultKind, MemFault};
use simbench_core::ir::MemSize;
use simbench_core::mmu::{Perms, TlbEntry, WalkResult};
use simbench_core::{page_of, PAGE_SHIFT};

use crate::sys::ArmletSys;

/// L1 descriptor type bits.
const L1_FAULT: u32 = 0b00;
const L1_COARSE: u32 = 0b01;
const L1_SECTION: u32 = 0b10;

/// L2 descriptor type bits.
const L2_FAULT: u32 = 0b00;
const L2_SMALL: u32 = 0b10;

/// Access-permission field decode: (kernel, user).
fn decode_ap(ap: u32) -> (Perms, Perms) {
    match ap & 0b11 {
        0b00 => (Perms::RW, Perms::NONE),
        0b01 => (Perms::RW, Perms::R),
        0b10 => (Perms::RW, Perms::RW),
        _ => (Perms::R, Perms::R),
    }
}

fn apply_xn(kernel: Perms, user: Perms, xn: bool) -> (Perms, Perms) {
    // Execute permission follows read permission unless XN is set.
    let x = |p: Perms| Perms { x: p.r && !xn, ..p };
    (x(kernel), x(user))
}

fn fault(va: u32, kind: FaultKind) -> MemFault {
    // The access kind is unknown to the walker; callers overwrite it.
    MemFault {
        addr: va,
        access: AccessKind::Read,
        kind,
    }
}

/// Walk the armlet page tables for `va`.
///
/// # Errors
///
/// Translation faults ([`FaultKind::Unmapped`]), domain faults
/// ([`FaultKind::Permission`]), and walk bus errors
/// ([`FaultKind::BusError`]).
pub fn walk<B: Bus>(sys: &ArmletSys, bus: &mut B, va: u32) -> WalkResult {
    let ttbr = sys.ttbr & !0x3FFF;
    let l1_index = va >> 20;
    let l1_addr = ttbr + l1_index * 4;
    let l1 = bus
        .read(l1_addr, MemSize::B4)
        .map_err(|_| fault(va, FaultKind::BusError))?;

    let (ppage, ap, xn, domain) = match l1 & 0b11 {
        L1_FAULT => return Err(fault(va, FaultKind::Unmapped)),
        L1_SECTION => {
            let base_page = (l1 & 0xFFF0_0000) >> PAGE_SHIFT;
            let in_section = (va >> PAGE_SHIFT) & 0xFF;
            let ap = (l1 >> 10) & 0b11;
            let xn = l1 & (1 << 4) != 0;
            let domain = (l1 >> 5) & 0xF;
            (base_page + in_section, ap, xn, domain)
        }
        L1_COARSE => {
            let l2_base = l1 & 0xFFFF_FC00;
            let l2_index = (va >> PAGE_SHIFT) & 0xFF;
            let l2_addr = l2_base + l2_index * 4;
            let l2 = bus
                .read(l2_addr, MemSize::B4)
                .map_err(|_| fault(va, FaultKind::BusError))?;
            match l2 & 0b11 {
                L2_FAULT => return Err(fault(va, FaultKind::Unmapped)),
                L2_SMALL => {
                    let ppage = l2 >> PAGE_SHIFT;
                    let ap = (l2 >> 4) & 0b11;
                    let xn = l2 & (1 << 2) != 0;
                    let domain = (l1 >> 5) & 0xF;
                    (ppage, ap, xn, domain)
                }
                _ => return Err(fault(va, FaultKind::Unmapped)),
            }
        }
        _ => return Err(fault(va, FaultKind::Unmapped)),
    };

    // Domain access control: 0 = no access, 1 = client (check AP),
    // 3 = manager (bypass AP).
    let (kernel, user) = match (sys.dacr >> (domain * 2)) & 0b11 {
        0b00 | 0b10 => return Err(fault(va, FaultKind::Permission)),
        0b01 => {
            let (k, u) = decode_ap(ap);
            apply_xn(k, u, xn)
        }
        _ => (Perms::RWX, Perms::RWX),
    };

    Ok(TlbEntry {
        vpage: page_of(va),
        ppage,
        user,
        kernel,
    })
}

/// Declarative access level for [`TableBuilder`] mappings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Kernel RW+X, user none (AP=0).
    KernelOnly,
    /// Kernel RW+X, user RO+X (AP=1).
    UserRead,
    /// Kernel RW+X, user RW+X (AP=2).
    UserFull,
    /// Read-only at both levels (AP=3).
    ReadOnly,
    /// Kernel RW, user none, execute-never (AP=0, XN).
    KernelDevice,
}

impl Access {
    fn ap_xn(self) -> (u32, bool) {
        match self {
            Access::KernelOnly => (0, false),
            Access::UserRead => (1, false),
            Access::UserFull => (2, false),
            Access::ReadOnly => (3, false),
            Access::KernelDevice => (0, true),
        }
    }
}

/// Builds armlet page tables as a flat byte blob to embed in a guest
/// image. The L1 table occupies the first 16 KB at `base`; coarse L2
/// tables are allocated after it.
#[derive(Debug)]
pub struct TableBuilder {
    base: u32,
    /// Table blob: L1 (16 KB) followed by L2 tables (1 KB each).
    blob: Vec<u8>,
    /// Map from L1 index to allocated L2 table address (if coarse).
    l2_of: Vec<Option<u32>>,
}

const L1_BYTES: u32 = 4096 * 4;
const L2_BYTES: u32 = 256 * 4;

impl TableBuilder {
    /// Start building tables at physical `base` (must be 16 KB aligned).
    ///
    /// # Panics
    ///
    /// Panics on misaligned `base`.
    pub fn new(base: u32) -> Self {
        assert_eq!(base & 0x3FFF, 0, "TTBR base must be 16 KB aligned");
        TableBuilder {
            base,
            blob: vec![0; L1_BYTES as usize],
            l2_of: vec![None; 4096],
        }
    }

    /// The TTBR value for these tables.
    pub fn ttbr(&self) -> u32 {
        self.base
    }

    fn write_u32(&mut self, addr: u32, val: u32) {
        let off = (addr - self.base) as usize;
        self.blob[off..off + 4].copy_from_slice(&val.to_le_bytes());
    }

    fn read_u32(&self, addr: u32) -> u32 {
        let off = (addr - self.base) as usize;
        u32::from_le_bytes(self.blob[off..off + 4].try_into().unwrap())
    }

    /// Map a 1 MB section. `va` and `pa` must be 1 MB aligned.
    ///
    /// # Panics
    ///
    /// Panics on misalignment or if the L1 slot already holds a coarse
    /// table.
    pub fn map_section(&mut self, va: u32, pa: u32, access: Access) {
        assert_eq!(va & 0xF_FFFF, 0, "section VA must be 1 MB aligned");
        assert_eq!(pa & 0xF_FFFF, 0, "section PA must be 1 MB aligned");
        let idx = va >> 20;
        assert!(self.l2_of[idx as usize].is_none(), "L1 slot already coarse");
        let (ap, xn) = access.ap_xn();
        let entry = (pa & 0xFFF0_0000) | ap << 10 | (xn as u32) << 4 | L1_SECTION;
        self.write_u32(self.base + idx * 4, entry);
    }

    fn l2_for(&mut self, va: u32) -> u32 {
        let idx = (va >> 20) as usize;
        if let Some(addr) = self.l2_of[idx] {
            return addr;
        }
        let addr = self.base + self.blob.len() as u32;
        self.blob.extend(std::iter::repeat_n(0, L2_BYTES as usize));
        self.l2_of[idx] = Some(addr);
        let l1_entry = (addr & 0xFFFF_FC00) | L1_COARSE;
        self.write_u32(self.base + (idx as u32) * 4, l1_entry);
        addr
    }

    /// Map one 4 KB page via a coarse table.
    ///
    /// # Panics
    ///
    /// Panics on misalignment or if the L1 slot already holds a section.
    pub fn map_page(&mut self, va: u32, pa: u32, access: Access) {
        assert_eq!(va & 0xFFF, 0, "page VA must be 4 KB aligned");
        assert_eq!(pa & 0xFFF, 0, "page PA must be 4 KB aligned");
        let l1_idx = (va >> 20) as usize;
        let l1_entry = self.read_u32(self.base + (l1_idx as u32) * 4);
        assert!(l1_entry & 0b11 != L1_SECTION, "L1 slot already a section");
        let l2_addr = self.l2_for(va);
        let l2_idx = (va >> PAGE_SHIFT) & 0xFF;
        let (ap, xn) = access.ap_xn();
        let entry = (pa & 0xFFFF_F000) | ap << 4 | (xn as u32) << 2 | L2_SMALL;
        self.write_u32(l2_addr + l2_idx * 4, entry);
    }

    /// Map `len` bytes from `va` to `pa`, choosing sections where both
    /// sides are 1 MB aligned and pages otherwise. `len` is rounded up to
    /// page granularity.
    pub fn map_range(&mut self, va: u32, pa: u32, len: u32, access: Access) {
        let mut v = va;
        let mut p = pa;
        let end = va
            .checked_add(len.next_multiple_of(1 << PAGE_SHIFT))
            .expect("range overflow");
        while v < end {
            if v & 0xF_FFFF == 0 && p & 0xF_FFFF == 0 && end - v >= 1 << 20 {
                self.map_section(v, p, access);
                v += 1 << 20;
                p += 1 << 20;
            } else {
                self.map_page(v, p, access);
                v += 1 << PAGE_SHIFT;
                p += 1 << PAGE_SHIFT;
            }
        }
    }

    /// Finish: `(load address, table bytes)` for the guest image.
    pub fn into_blob(self) -> (u32, Vec<u8>) {
        (self.base, self.blob)
    }

    /// Total bytes the tables occupy.
    pub fn size(&self) -> usize {
        self.blob.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbench_core::bus::FlatRam;
    use simbench_core::fault::FaultKind;

    const TBASE: u32 = 0x10_0000;

    fn setup(build: impl FnOnce(&mut TableBuilder)) -> (ArmletSys, FlatRam) {
        let mut tb = TableBuilder::new(TBASE);
        build(&mut tb);
        let (base, blob) = tb.into_blob();
        let mut ram = FlatRam::new(4 << 20);
        ram.ram_mut()[base as usize..base as usize + blob.len()].copy_from_slice(&blob);
        let sys = ArmletSys {
            ttbr: base,
            sctlr: 1,
            ..Default::default()
        };
        (sys, ram)
    }

    #[test]
    fn section_translation() {
        let (sys, mut ram) = setup(|tb| tb.map_section(0x0010_0000, 0x0020_0000, Access::UserFull));
        let e = walk(&sys, &mut ram, 0x0012_3456).unwrap();
        assert_eq!(e.vpage, page_of(0x0012_3456));
        assert_eq!(e.ppage, page_of(0x0022_3000));
        assert_eq!(e.translate(0x0012_3456), 0x0022_3456);
        assert!(e.user.w && e.kernel.w && e.user.x);
    }

    #[test]
    fn coarse_page_translation() {
        let (sys, mut ram) = setup(|tb| tb.map_page(0x0030_1000, 0x0008_2000, Access::KernelOnly));
        let e = walk(&sys, &mut ram, 0x0030_1ABC).unwrap();
        assert_eq!(e.translate(0x0030_1ABC), 0x0008_2ABC);
        assert!(e.kernel.w && e.kernel.x);
        assert_eq!(e.user, Perms::NONE);
        // Neighbouring page in the same coarse table is unmapped.
        let err = walk(&sys, &mut ram, 0x0030_2000).unwrap_err();
        assert_eq!(err.kind, FaultKind::Unmapped);
    }

    #[test]
    fn unmapped_l1_faults() {
        let (sys, mut ram) = setup(|_| {});
        let err = walk(&sys, &mut ram, 0x0500_0000).unwrap_err();
        assert_eq!(err.kind, FaultKind::Unmapped);
        assert_eq!(err.addr, 0x0500_0000);
    }

    #[test]
    fn ap_decoding() {
        let (sys, mut ram) = setup(|tb| {
            tb.map_page(0x0040_0000, 0x0000_1000, Access::UserRead);
            tb.map_page(0x0040_1000, 0x0000_2000, Access::ReadOnly);
            tb.map_page(0x0040_2000, 0x0000_3000, Access::KernelDevice);
        });
        let e = walk(&sys, &mut ram, 0x0040_0000).unwrap();
        assert!(e.kernel.w && e.user.r && !e.user.w);
        let e = walk(&sys, &mut ram, 0x0040_1000).unwrap();
        assert!(!e.kernel.w && e.kernel.r && !e.user.w);
        let e = walk(&sys, &mut ram, 0x0040_2000).unwrap();
        assert!(e.kernel.r && e.kernel.w && !e.kernel.x, "XN strips execute");
        assert_eq!(e.user, Perms::NONE);
    }

    #[test]
    fn domain_manager_bypasses_ap() {
        let (mut sys, mut ram) =
            setup(|tb| tb.map_page(0x0040_0000, 0x0000_1000, Access::ReadOnly));
        // Domain 0 to manager mode.
        sys.dacr = (sys.dacr & !0b11) | 0b11;
        let e = walk(&sys, &mut ram, 0x0040_0000).unwrap();
        assert!(e.user.w && e.kernel.w, "manager domain grants everything");
    }

    #[test]
    fn domain_no_access_faults() {
        let (mut sys, mut ram) =
            setup(|tb| tb.map_page(0x0040_0000, 0x0000_1000, Access::UserFull));
        sys.dacr &= !0b11; // domain 0: no access
        let err = walk(&sys, &mut ram, 0x0040_0000).unwrap_err();
        assert_eq!(err.kind, FaultKind::Permission);
    }

    #[test]
    fn walk_outside_ram_is_bus_error() {
        let sys = ArmletSys {
            ttbr: 0x3F0_0000,
            sctlr: 1,
            ..Default::default()
        };
        let mut ram = FlatRam::new(1 << 20); // ttbr outside RAM
        let err = walk(&sys, &mut ram, 0x1000).unwrap_err();
        assert_eq!(err.kind, FaultKind::BusError);
    }

    #[test]
    fn map_range_mixes_sections_and_pages() {
        let mut tb = TableBuilder::new(TBASE);
        // 1 MB + 8 KB starting at a 1 MB boundary: one section + 2 pages.
        tb.map_range(
            0x0060_0000,
            0x0060_0000,
            (1 << 20) + 0x2000,
            Access::UserFull,
        );
        let (sys, mut ram) = {
            let (base, blob) = tb.into_blob();
            let mut ram = FlatRam::new(4 << 20);
            ram.ram_mut()[base as usize..base as usize + blob.len()].copy_from_slice(&blob);
            (
                ArmletSys {
                    ttbr: base,
                    sctlr: 1,
                    ..Default::default()
                },
                ram,
            )
        };
        assert!(walk(&sys, &mut ram, 0x0060_0000).is_ok());
        assert!(walk(&sys, &mut ram, 0x006F_F000).is_ok());
        assert!(walk(&sys, &mut ram, 0x0070_0000).is_ok());
        assert!(walk(&sys, &mut ram, 0x0070_1000).is_ok());
        assert!(walk(&sys, &mut ram, 0x0070_2000).is_err());
    }

    #[test]
    #[should_panic(expected = "16 KB aligned")]
    fn misaligned_base_rejected() {
        TableBuilder::new(0x1234);
    }
}

//! armlet assembler: implements the portable interface plus
//! architecture-specific extensions used by the armlet support package.

use simbench_core::asm::{AsmBuffer, Label, PReg, PortableAsm};
use simbench_core::image::GuestImage;
use simbench_core::ir::{AluOp, Cond};

use crate::encoding as enc;

/// Map a portable register onto an armlet GPR.
///
/// `A`–`F` → r0–r5, `Sp` → r13, `Lr` → r14. r6–r12 remain free for
/// architecture-support code; r15 is unused by convention.
pub fn reg(r: PReg) -> u8 {
    match r {
        PReg::A => 0,
        PReg::B => 1,
        PReg::C => 2,
        PReg::D => 3,
        PReg::E => 4,
        PReg::F => 5,
        PReg::Sp => enc::SP,
        PReg::Lr => enc::LR,
    }
}

#[derive(Debug, Clone, Copy)]
enum Fix {
    /// Unconditional branch at `addr`.
    B,
    /// Branch-and-link at `addr`.
    Bl,
    /// Conditional branch at `addr` (condition already encoded).
    BCond,
    /// movw/movt pair at `addr`, `addr+4` loading an absolute address.
    MovAbs,
}

/// The armlet assembler.
#[derive(Debug, Default)]
pub struct ArmletAsm {
    buf: AsmBuffer,
    fixups: Vec<(u32, Label, Fix)>,
}

impl ArmletAsm {
    /// A fresh assembler; call [`PortableAsm::org`] before emitting.
    pub fn new() -> Self {
        Self::default()
    }

    /// Emit a raw instruction word.
    pub fn raw(&mut self, word: u32) {
        self.buf.emit_u32(word);
    }

    /// ALU with raw register numbers (for arch-support code using r6+).
    pub fn alu_rr_raw(&mut self, op: AluOp, rd: u8, rn: u8, rm: u8) {
        self.raw(enc::alu_rr(op, rd, rn, rm, false));
    }

    /// Flag-setting ALU register form.
    pub fn alu_rr_s(&mut self, op: AluOp, rd: PReg, rn: PReg, rm: PReg) {
        self.raw(enc::alu_rr(op, reg(rd), reg(rn), reg(rm), true));
    }

    /// Flag-setting ALU immediate form.
    pub fn alu_ri_s(&mut self, op: AluOp, rd: PReg, rn: PReg, imm: u32) {
        self.raw(enc::alu_ri(op, reg(rd), reg(rn), imm, true));
    }

    /// Load a full 32-bit constant into a raw register (movw + movt).
    pub fn mov_imm_raw(&mut self, rd: u8, imm: u32) {
        self.raw(enc::movw(rd, imm & 0xFFFF));
        if imm >> 16 != 0 {
            self.raw(enc::movt(rd, imm >> 16));
        }
    }

    /// Non-privileged word load (`ldrt`): the ARM-only feature behind the
    /// Nonprivileged Access benchmark.
    pub fn ldrt(&mut self, rd: PReg, base: PReg, off: i32) {
        self.raw(enc::ldst(
            true,
            enc::LsSize::Word,
            true,
            reg(rd),
            reg(base),
            off,
        ));
    }

    /// Non-privileged word store (`strt`).
    pub fn strt(&mut self, rs: PReg, base: PReg, off: i32) {
        self.raw(enc::ldst(
            false,
            enc::LsSize::Word,
            true,
            reg(rs),
            reg(base),
            off,
        ));
    }

    /// Coprocessor read into a portable register.
    pub fn mrc(&mut self, cp: u8, creg: u8, rt: PReg) {
        self.raw(enc::mrc(cp, creg, reg(rt)));
    }

    /// Coprocessor write from a portable register.
    pub fn mcr(&mut self, cp: u8, creg: u8, rt: PReg) {
        self.raw(enc::mcr(cp, creg, reg(rt)));
    }

    /// Halfword load.
    pub fn load16(&mut self, rd: PReg, base: PReg, off: i32) {
        self.raw(enc::ldst(
            true,
            enc::LsSize::Half,
            false,
            reg(rd),
            reg(base),
            off,
        ));
    }

    /// Halfword store.
    pub fn store16(&mut self, rs: PReg, base: PReg, off: i32) {
        self.raw(enc::ldst(
            false,
            enc::LsSize::Half,
            false,
            reg(rs),
            reg(base),
            off,
        ));
    }
}

impl PortableAsm for ArmletAsm {
    fn here(&self) -> u32 {
        self.buf.here()
    }

    fn org(&mut self, addr: u32) {
        self.buf.org(addr);
    }

    fn align(&mut self, align: u32) {
        self.buf.align(align);
    }

    fn skip(&mut self, n: u32) {
        self.buf.skip(n);
    }

    fn word(&mut self, w: u32) {
        self.buf.emit_u32(w);
    }

    fn bytes(&mut self, data: &[u8]) {
        self.buf.emit(data);
    }

    fn new_label(&mut self) -> Label {
        self.buf.new_label()
    }

    fn bind(&mut self, l: Label) {
        self.buf.bind(l);
    }

    fn label_addr(&self, l: Label) -> Option<u32> {
        self.buf.label_addr(l)
    }

    fn mov_imm(&mut self, rd: PReg, imm: u32) {
        self.mov_imm_raw(reg(rd), imm);
    }

    fn mov_label(&mut self, rd: PReg, l: Label) {
        let at = self.here();
        // Always emit the full movw/movt pair so the fixup site has a
        // fixed shape.
        self.raw(enc::movw(reg(rd), 0));
        self.raw(enc::movt(reg(rd), 0));
        self.fixups.push((at, l, Fix::MovAbs));
    }

    fn alu_rr(&mut self, op: AluOp, rd: PReg, rn: PReg, rm: PReg) {
        self.raw(enc::alu_rr(op, reg(rd), reg(rn), reg(rm), false));
    }

    fn alu_ri(&mut self, op: AluOp, rd: PReg, rn: PReg, imm: u32) {
        self.raw(enc::alu_ri(op, reg(rd), reg(rn), imm, false));
    }

    fn cmp_ri(&mut self, rn: PReg, imm: u32) {
        self.raw(enc::cmp_ri(reg(rn), imm));
    }

    fn cmp_rr(&mut self, rn: PReg, rm: PReg) {
        self.raw(enc::cmp_rr(reg(rn), reg(rm)));
    }

    fn load(&mut self, rd: PReg, base: PReg, off: i32) {
        self.raw(enc::ldst(
            true,
            enc::LsSize::Word,
            false,
            reg(rd),
            reg(base),
            off,
        ));
    }

    fn store(&mut self, rs: PReg, base: PReg, off: i32) {
        self.raw(enc::ldst(
            false,
            enc::LsSize::Word,
            false,
            reg(rs),
            reg(base),
            off,
        ));
    }

    fn load8(&mut self, rd: PReg, base: PReg, off: i32) {
        self.raw(enc::ldst(
            true,
            enc::LsSize::Byte,
            false,
            reg(rd),
            reg(base),
            off,
        ));
    }

    fn store8(&mut self, rs: PReg, base: PReg, off: i32) {
        self.raw(enc::ldst(
            false,
            enc::LsSize::Byte,
            false,
            reg(rs),
            reg(base),
            off,
        ));
    }

    fn b(&mut self, l: Label) {
        let at = self.here();
        self.raw(enc::b(at, at.wrapping_add(4)));
        self.fixups.push((at, l, Fix::B));
    }

    fn b_cond(&mut self, c: Cond, l: Label) {
        let at = self.here();
        self.raw(enc::b_cond(c, at, at.wrapping_add(4)));
        self.fixups.push((at, l, Fix::BCond));
    }

    fn br_reg(&mut self, r: PReg) {
        self.raw(enc::bx(reg(r)));
    }

    fn call(&mut self, l: Label) {
        let at = self.here();
        self.raw(enc::bl(at, at.wrapping_add(4)));
        self.fixups.push((at, l, Fix::Bl));
    }

    fn call_reg(&mut self, r: PReg) {
        self.raw(enc::blx(reg(r)));
    }

    fn ret(&mut self) {
        self.raw(enc::bx(enc::LR));
    }

    fn svc(&mut self, imm: u16) {
        self.raw(enc::svc(imm));
    }

    fn udf(&mut self) {
        self.raw(enc::UDF_WORD);
    }

    fn eret(&mut self) {
        self.raw(enc::eret());
    }

    fn halt(&mut self) {
        self.raw(enc::halt());
    }

    fn nop(&mut self) {
        self.raw(enc::nop());
    }

    fn emit_smc_word(&mut self, rd: PReg, riter: PReg) {
        // rd = (riter << 16) >> 16          (low 16 bits of the counter)
        // rd[31:16] = 0x3500 >> 16 via movt (movw r5,#imm class + rd=5)
        self.alu_ri(AluOp::Lsl, rd, riter, 16);
        self.alu_ri(AluOp::Lsr, rd, rd, 16);
        self.raw(enc::movt(reg(rd), enc::SMC_NOP_WORD >> 16));
    }

    fn smc_nop_word(&self) -> u32 {
        enc::SMC_NOP_WORD
    }

    fn finish(mut self, entry: u32) -> GuestImage {
        for (at, label, fix) in std::mem::take(&mut self.fixups) {
            let target = self
                .buf
                .label_addr(label)
                .unwrap_or_else(|| panic!("unbound label {label:?} referenced at {at:#x}"));
            match fix {
                Fix::B => self.buf.write_u32_at(at, enc::b(at, target)),
                Fix::Bl => self.buf.write_u32_at(at, enc::bl(at, target)),
                Fix::BCond => {
                    let old = self.buf.read_u32_at(at);
                    let cond = Cond::from_code(((old >> 24) & 0xF) as u8).expect("bcond fixup");
                    self.buf.write_u32_at(at, enc::b_cond(cond, at, target));
                }
                Fix::MovAbs => {
                    let old = self.buf.read_u32_at(at);
                    let rd = ((old >> 20) & 0xF) as u8;
                    self.buf.write_u32_at(at, enc::movw(rd, target & 0xFFFF));
                    self.buf.write_u32_at(at + 4, enc::movt(rd, target >> 16));
                }
            }
        }
        self.buf.into_image(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;
    use simbench_core::ir::Op;

    fn words(img: &GuestImage, addr: u32) -> Vec<u32> {
        let s = img
            .sections
            .iter()
            .find(|s| s.addr <= addr && addr < s.end())
            .unwrap();
        s.bytes[(addr - s.addr) as usize..]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    #[test]
    fn forward_branch_fixup() {
        let mut a = ArmletAsm::new();
        a.org(0x8000);
        let target = a.new_label();
        a.b(target);
        a.nop();
        a.bind(target);
        a.halt();
        let img = a.finish(0x8000);
        let w = words(&img, 0x8000);
        let d = decode(w[0], 0x8000).unwrap();
        assert_eq!(d.ops, vec![Op::Branch { target: 0x8008 }]);
    }

    #[test]
    fn backward_call_fixup() {
        let mut a = ArmletAsm::new();
        a.org(0x8000);
        let func = a.new_label();
        a.bind(func);
        a.ret();
        a.nop();
        a.call(func);
        let img = a.finish(0x8000);
        let w = words(&img, 0x8008);
        let d = decode(w[0], 0x8008).unwrap();
        assert!(matches!(
            d.ops[0],
            Op::Call {
                target: 0x8000,
                ret: 0x800C,
                ..
            }
        ));
    }

    #[test]
    fn mov_label_absolute() {
        let mut a = ArmletAsm::new();
        a.org(0x8000);
        let data = a.new_label();
        a.mov_label(PReg::A, data);
        a.halt();
        a.align(16);
        a.bind(data);
        a.word(0x1234_5678);
        let img = a.finish(0x8000);
        let addr = 0x8010;
        let w = words(&img, 0x8000);
        assert_eq!(w[0], enc::movw(0, addr & 0xFFFF));
        assert_eq!(w[1], enc::movt(0, addr >> 16));
    }

    #[test]
    fn mov_imm_small_skips_movt() {
        let mut a = ArmletAsm::new();
        a.org(0);
        a.mov_imm(PReg::B, 0x42);
        a.mov_imm(PReg::C, 0xDEAD_BEEF);
        let img = a.finish(0);
        let w = words(&img, 0);
        assert_eq!(w[0], enc::movw(1, 0x42));
        assert_eq!(w[1], enc::movw(2, 0xBEEF));
        assert_eq!(w[2], enc::movt(2, 0xDEAD));
    }

    #[test]
    fn smc_word_sequence_is_three_insns() {
        let mut a = ArmletAsm::new();
        a.org(0);
        a.emit_smc_word(PReg::A, PReg::B);
        let img = a.finish(0);
        let w = words(&img, 0);
        assert_eq!(w.len(), 3);
        // All three must decode.
        for (i, word) in w.iter().enumerate() {
            decode(*word, (i * 4) as u32).unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut a = ArmletAsm::new();
        a.org(0);
        let l = a.new_label();
        a.b(l);
        let _ = a.finish(0);
    }
}

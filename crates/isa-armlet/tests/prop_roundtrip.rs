//! Property test: every armlet encoding round-trips through the decoder.

use proptest::prelude::*;
use simbench_core::ir::{AluOp, Cond, Op, Operand};
use simbench_isa_armlet::{decode::decode, encoding as enc};

fn any_reg() -> impl Strategy<Value = u8> {
    0u8..16
}

proptest! {
    #[test]
    fn alu_rr_roundtrip(code in 0u8..16, rd in any_reg(), rn in any_reg(), rm in any_reg(), s: bool) {
        let op = AluOp::from_code(code).unwrap();
        let w = enc::alu_rr(op, rd, rn, rm, s);
        let d = decode(w, 0x8000).unwrap();
        prop_assert_eq!(d.ops, vec![Op::Alu { op, rd, rn, src: Operand::Reg(rm), set_flags: s }]);
    }

    #[test]
    fn alu_ri_roundtrip(code in 0u8..16, rd in any_reg(), rn in any_reg(), imm in 0u32..4096, s: bool) {
        let op = AluOp::from_code(code).unwrap();
        let w = enc::alu_ri(op, rd, rn, imm, s);
        let d = decode(w, 0).unwrap();
        prop_assert_eq!(d.ops, vec![Op::Alu { op, rd, rn, src: Operand::Imm(imm), set_flags: s }]);
    }

    #[test]
    fn ldst_roundtrip(load: bool, byte: bool, np: bool, rd in any_reg(), rn in any_reg(), off in -2048i32..=2047) {
        let size = if byte { enc::LsSize::Byte } else { enc::LsSize::Word };
        let w = enc::ldst(load, size, np, rd, rn, off);
        let d = decode(w, 0).unwrap();
        match d.ops[0] {
            Op::Load { rd: r, base, off: o, nonpriv, .. } => {
                prop_assert!(load);
                prop_assert_eq!((r, base, o, nonpriv), (rd, rn, off, np));
            }
            Op::Store { rs, base, off: o, nonpriv, .. } => {
                prop_assert!(!load);
                prop_assert_eq!((rs, base, o, nonpriv), (rd, rn, off, np));
            }
            ref other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    #[test]
    fn branch_roundtrip(pc in (0u32..0x100_0000).prop_map(|x| x * 4), delta in -100_000i32..100_000) {
        let target = pc.wrapping_add((delta * 4) as u32);
        let d = decode(enc::b(pc, target), pc).unwrap();
        prop_assert_eq!(d.ops, vec![Op::Branch { target }]);
        let d = decode(enc::bl(pc, target), pc).unwrap();
        let is_call_to_target = matches!(d.ops[0], Op::Call { target: t, .. } if t == target);
        prop_assert!(is_call_to_target);
    }

    #[test]
    fn bcond_roundtrip(pc in (0u32..0x10_0000).prop_map(|x| x * 4), delta in -10_000i32..10_000, c in 0u8..15) {
        let cond = Cond::from_code(c).unwrap();
        let target = pc.wrapping_add((delta * 4) as u32);
        let d = decode(enc::b_cond(cond, pc, target), pc).unwrap();
        prop_assert_eq!(d.ops, vec![Op::BranchCond { cond, target }]);
    }

    #[test]
    fn movw_movt_build_any_constant(value: u32) {
        // Semantic property: executing movw+movt assigns exactly `value`.
        let lo = decode(enc::movw(0, value & 0xFFFF), 0).unwrap();
        let hi = decode(enc::movt(0, value >> 16), 4).unwrap();
        let mut r0 = 0xDEAD_BEEFu32;
        for op in lo.ops.iter().chain(hi.ops.iter()) {
            if let Op::Alu { op, src: Operand::Imm(imm), .. } = op {
                r0 = simbench_core::alu::eval(*op, r0, *imm, Default::default()).value;
            }
        }
        prop_assert_eq!(r0, value);
    }

    #[test]
    fn decoder_never_panics(w: u32) {
        let _ = decode(w, 0x8000);
    }
}

//! Property test: IR invariants the engines rely on hold for *every*
//! decodable word — in release builds too, not just under
//! `debug_assert`.
//!
//! * the lowered op count fits the fixed-capacity inline [`OpList`]
//!   (`MAX_OPS_PER_INSN`), so decoding can never overflow the inline
//!   storage the hot loops depend on;
//! * the control-flow-last invariant: at most one control-transfer op,
//!   and only as the final op — block translation (DBT) silently
//!   miscompiles otherwise.

use proptest::prelude::*;
use simbench_core::ir::MAX_OPS_PER_INSN;
use simbench_isa_armlet::decode::decode;

proptest! {
    #[test]
    fn decoded_ops_fit_oplist_and_control_flow_is_last(word: u32, pc: u32) {
        if let Ok(d) = decode(word, pc) {
            prop_assert!(!d.ops.is_empty(), "decoded to zero ops: {word:#010x}");
            prop_assert!(
                d.ops.len() <= MAX_OPS_PER_INSN,
                "{word:#010x} lowered to {} ops", d.ops.len()
            );
            for op in &d.ops[..d.ops.len() - 1] {
                prop_assert!(
                    !op.is_control_flow(),
                    "{word:#010x}: control flow op {op:?} not last in {:?}", d.ops
                );
            }
        }
    }

    #[test]
    fn decoded_length_is_the_isa_word_size(word: u32, pc: u32) {
        if let Ok(d) = decode(word, pc) {
            prop_assert_eq!(d.len, 4);
        }
    }
}

//! Differential property test: the spec-generated armlet decoder agrees
//! with the hand-written reference on random words (the exhaustive 2^32
//! proof runs release-mode in `crates/analyzer/tests/decode_sweep.rs`).

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    #[test]
    fn generated_matches_reference(word in any::<u32>(), pc in any::<u32>()) {
        let generated = simbench_isa_armlet::decode::decode(word, pc);
        let reference = simbench_isa_armlet::decode_ref::decode(word, pc);
        prop_assert_eq!(generated, reference, "word {:#010x} pc {:#010x}", word, pc);
    }

    #[test]
    fn biased_top_nibbles_match(nibble in 0u32..16, low in any::<u32>(), pc in any::<u32>()) {
        // Uniform u32s rarely hit the structured sub-encodings; pin the
        // class nibble so every dispatch arm gets dense coverage.
        let word = (nibble << 28) | (low & 0x0FFF_FFFF);
        let generated = simbench_isa_armlet::decode::decode(word, pc);
        let reference = simbench_isa_armlet::decode_ref::decode(word, pc);
        prop_assert_eq!(generated, reference, "word {:#010x} pc {:#010x}", word, pc);
    }
}

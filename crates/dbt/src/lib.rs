//! # simbench-dbt
//!
//! A dynamic-binary-translation full-system engine — the QEMU analogue of
//! the paper's evaluation. Mechanisms implemented (and self-described for
//! the Fig 4 reproduction):
//!
//! * block-based code generation over the shared micro-op IR with a
//!   translation-time optimizer ([`opt`]),
//! * a translation-block cache keyed by (virtual PC, physical page)
//!   with full-flush-on-overflow ([`cache`]),
//! * direct block chaining for intra-page branches, block-cache lookup
//!   for inter-page branches, and an indirect-branch target cache,
//! * a software TLB with code-page write protection driving precise
//!   self-modifying-code invalidation ([`tlb`]),
//! * interrupt delivery at block boundaries and synchronous exceptions
//!   as side exits,
//! * a [`versions::VersionProfile`] matrix reproducing the QEMU release
//!   history studied by the paper (Figs 2, 6 and 8).

pub mod cache;
pub mod opt;
pub mod tlb;
pub mod versions;

pub use versions::{VersionProfile, QEMU_VERSIONS};

use std::marker::PhantomData;
use std::time::Instant;

use simbench_core::bus::{Bus, BusEvent};
use simbench_core::cpu::{CpuState, Flags};
use simbench_core::engine::{Engine, EngineInfo, ExitReason, PhaseTracker, RunLimits, RunOutcome};
use simbench_core::events::Counters;
use simbench_core::exec::{step_op, BranchFlavor, ExecCtx, OpOutcome, Trap};
use simbench_core::fault::{AccessKind, CopFault, ExcInfo, ExceptionKind, FaultKind, MemFault};
use simbench_core::ir::{MemSize, Op};
use simbench_core::isa::{CopEffect, Isa};
use simbench_core::machine::Machine;
use simbench_core::mmu::TlbEntry;
use simbench_core::page_of;

use cache::{CodeCache, TbId, TbStep};
use tlb::DbtTlb;

/// Maximum guest instructions per translation block.
const MAX_BLOCK_INSNS: usize = 128;
/// Blocks between wall-clock limit checks.
const WALL_CHECK_BLOCKS: u64 = 4096;

/// The DBT engine.
#[derive(Debug)]
pub struct Dbt<I: Isa> {
    profile: VersionProfile,
    tlb: DbtTlb,
    code: CodeCache,
    /// Reusable translation buffer: blocks are decoded and optimized
    /// here, then copied into the code cache's step arena. Steady-state
    /// translation therefore allocates nothing.
    scratch: Vec<TbStep>,
    blocks_executed: u64,
    _isa: PhantomData<I>,
}

impl<I: Isa> Default for Dbt<I> {
    fn default() -> Self {
        Self::new()
    }
}

impl<I: Isa> Dbt<I> {
    /// An engine at the newest version profile.
    pub fn new() -> Self {
        Self::with_profile(VersionProfile::latest())
    }

    /// An engine configured as a specific version.
    pub fn with_profile(profile: VersionProfile) -> Self {
        Dbt {
            profile,
            tlb: DbtTlb::new(profile.tlb_bits),
            code: CodeCache::new(profile.ibtc_bits),
            scratch: Vec::new(),
            blocks_executed: 0,
            _isa: PhantomData,
        }
    }

    /// The active version profile.
    pub fn profile(&self) -> &VersionProfile {
        &self.profile
    }

    /// Live translation blocks (diagnostics / tests).
    pub fn live_blocks(&self) -> usize {
        self.code.live_blocks()
    }

    /// Translate a fetch address, filling the TLB on miss.
    fn translate_exec<B: Bus>(
        &mut self,
        cpu: &CpuState,
        sys: &I::Sys,
        bus: &mut B,
        va: u32,
    ) -> Result<u32, MemFault> {
        if !I::mmu_enabled(sys) {
            return Ok(va);
        }
        let vpage = page_of(va);
        let entry = match self.tlb.lookup(vpage) {
            Some(e) => e.entry,
            None => {
                let e = I::walk(sys, bus, va).map_err(|mut f| {
                    f.access = AccessKind::Execute;
                    f
                })?;
                self.tlb.insert(e, self.code.page_has_code(e.ppage));
                e
            }
        };
        entry.check(va, AccessKind::Execute, cpu.level.is_kernel(), false)
    }

    /// Per-block-entry revalidation guard: later version profiles re-check
    /// the code mapping on every dispatch of a chained block.
    fn entry_guard<B: Bus>(
        &mut self,
        cpu: &CpuState,
        sys: &I::Sys,
        bus: &mut B,
        pc: u32,
        ppage: u32,
    ) -> bool {
        for _ in 0..self.profile.entry_guard_level {
            match self.translate_exec(cpu, sys, bus, pc) {
                Ok(pa) if page_of(pa) == ppage => {}
                _ => return false,
            }
        }
        true
    }

    /// Fetch raw instruction bytes at `pc`, possibly crossing a page.
    fn fetch_bytes<B: Bus>(
        &mut self,
        cpu: &CpuState,
        sys: &I::Sys,
        bus: &mut B,
        pc: u32,
        buf: &mut [u8; 8],
    ) -> Result<usize, MemFault> {
        let want = I::MAX_INSN_BYTES;
        let mut have = 0usize;
        let mut va = pc;
        while have < want {
            let pa = match self.translate_exec(cpu, sys, bus, va) {
                Ok(pa) => pa,
                Err(f) => {
                    if have > 0 {
                        break;
                    }
                    return Err(f);
                }
            };
            let page_left = (0x1000 - (va & 0xFFF)) as usize;
            let n = page_left.min(want - have);
            let ram = bus.ram();
            if (pa as usize) + n > ram.len() {
                if have == 0 {
                    return Err(MemFault {
                        addr: pc,
                        access: AccessKind::Execute,
                        kind: FaultKind::BusError,
                    });
                }
                break;
            }
            buf[have..have + n].copy_from_slice(&ram[pa as usize..pa as usize + n]);
            have += n;
            va = va.wrapping_add(n as u32);
        }
        Ok(have)
    }

    /// Translate a new block starting at `pc`.
    fn translate_block<B: Bus>(
        &mut self,
        m: &mut Machine<I, B>,
        counters: &mut Counters,
        pc: u32,
    ) -> Result<TbId, MemFault> {
        let _obs = simbench_obs::span!("dbt.translate");
        let first_pa = self.translate_exec(&m.cpu, &m.sys, &mut m.bus, pc)?;
        let ppage = page_of(first_pa);
        self.scratch.clear();
        let mut cur = pc;
        let mut taken_target = None;
        let mut buf = [0u8; 8];

        for _ in 0..MAX_BLOCK_INSNS {
            let have = match self.fetch_bytes(&m.cpu, &m.sys, &mut m.bus, cur, &mut buf) {
                Ok(n) => n,
                Err(f) => {
                    if self.scratch.is_empty() {
                        return Err(f);
                    }
                    break;
                }
            };
            let decoded = match I::decode(&buf[..have], cur) {
                Ok(d) => d,
                Err(_) => {
                    // Undecodable bytes translate to an explicit UDF trap.
                    self.scratch.push(TbStep {
                        op: Op::Udf,
                        next_pc: cur.wrapping_add(I::MAX_INSN_BYTES as u32),
                        insn_start: true,
                    });
                    cur = cur.wrapping_add(I::MAX_INSN_BYTES as u32);
                    break;
                }
            };
            let next = cur.wrapping_add(decoded.len as u32);
            let ends = decoded.ends_block();
            for (i, op) in decoded.ops.iter().enumerate() {
                self.scratch.push(TbStep {
                    op: *op,
                    next_pc: next,
                    insn_start: i == 0,
                });
            }
            if ends {
                taken_target = match decoded.ops.last() {
                    Some(Op::Branch { target }) => Some(*target),
                    Some(Op::BranchCond { target, .. }) => Some(*target),
                    Some(Op::Call { target, .. }) => Some(*target),
                    _ => None,
                };
                cur = next;
                break;
            }
            cur = next;
            // Blocks never span pages: stop before leaving the first one.
            if page_of(cur) != page_of(pc) {
                break;
            }
        }

        opt::optimize(&mut self.scratch, self.profile.optimizer_level);
        counters.blocks_translated += 1;
        static OBS_TRANSLATIONS: simbench_obs::Counter =
            simbench_obs::Counter::new("dbt.translations");
        static OBS_BLOCK_STEPS: simbench_obs::Histogram =
            simbench_obs::Histogram::new("dbt.block_steps");
        OBS_TRANSLATIONS.add(1);
        OBS_BLOCK_STEPS.observe(self.scratch.len() as u64);

        let (id, first_in_page) = self
            .code
            .insert(pc, ppage, cur, taken_target, &self.scratch);
        if first_in_page {
            // Stale TLB entries for this page lack the write-protect
            // flag; drop them all so future fills pick it up.
            self.tlb.flush();
        }
        Ok(id)
    }

    /// Find or translate the block at `pc`.
    fn lookup_or_translate<B: Bus>(
        &mut self,
        m: &mut Machine<I, B>,
        counters: &mut Counters,
        pc: u32,
    ) -> Result<TbId, MemFault> {
        let pa = self.translate_exec(&m.cpu, &m.sys, &mut m.bus, pc)?;
        let ppage = page_of(pa);
        if let Some(id) = self.code.lookup(pc, ppage) {
            counters.block_cache_hits += 1;
            return Ok(id);
        }
        if self.code.needs_flush() {
            self.code.flush_all();
        }
        self.translate_block(m, counters, pc)
    }

    /// Eager exception-side-exit synchronisation. Later profiles perform
    /// QEMU-style `cpu_restore_state` on every synchronous exception:
    /// re-decode the interrupted block to recover precise state, then
    /// unchain everything and flush the IBTC. 2.5.0-rc0+ skips all of it
    /// for data aborts (the data-fault fast path of Figs 6/8).
    fn exception_sync<B: Bus>(
        &mut self,
        m: &mut Machine<I, B>,
        block_pc: u32,
        is_data_fault: bool,
    ) {
        if !self.profile.eager_exception_sync {
            return;
        }
        if is_data_fault && self.profile.data_fault_fast_path {
            return;
        }
        self.recover_state(m, block_pc);
        self.code.unchain_all();
    }

    /// State recovery: re-decode the faulting block (without caching the
    /// result), exactly the work `cpu_restore_state` re-does in a real
    /// DBT to map host state back to guest state.
    fn recover_state<B: Bus>(&mut self, m: &mut Machine<I, B>, block_pc: u32) {
        let mut buf = [0u8; 8];
        let mut cur = block_pc;
        for _ in 0..MAX_BLOCK_INSNS {
            let Ok(have) = self.fetch_bytes(&m.cpu, &m.sys, &mut m.bus, cur, &mut buf) else {
                return;
            };
            let Ok(d) = I::decode(&buf[..have], cur) else {
                return;
            };
            let ends = d.ends_block();
            cur = cur.wrapping_add(d.len as u32);
            if ends || page_of(cur) != page_of(block_pc) {
                return;
            }
        }
    }

    /// Resolve and, policy permitting, record a chain edge from `cur` to
    /// `target`. Returns the successor to dispatch next.
    fn chain_to<B: Bus>(
        &mut self,
        m: &mut Machine<I, B>,
        counters: &mut Counters,
        cur: TbId,
        target: u32,
        taken_edge: bool,
    ) -> Option<TbId> {
        // Existing chain?
        let slot = if taken_edge {
            self.code.blocks[cur as usize].chain_taken
        } else {
            self.code.blocks[cur as usize].chain_fall
        };
        if let Some(id) = slot {
            let tb = &self.code.blocks[id as usize];
            if !tb.dead && tb.pc == target {
                return Some(id);
            }
        }
        let same_page = page_of(self.code.blocks[cur as usize].pc) == page_of(target);
        let allowed = if same_page {
            self.profile.chain_intra
        } else {
            self.profile.chain_inter
        };
        let id = match self.lookup_or_translate(m, counters, target) {
            Ok(id) => id,
            Err(f) => {
                take_prefetch_abort::<I, B>(m, counters, f, target);
                return None;
            }
        };
        if allowed {
            let tb = &mut self.code.blocks[cur as usize];
            if taken_edge {
                tb.chain_taken = Some(id);
            } else {
                tb.chain_fall = Some(id);
            }
        }
        Some(id)
    }

    /// Resolve an indirect branch: IBTC hit or full lookup + fill.
    fn resolve_indirect<B: Bus>(
        &mut self,
        m: &mut Machine<I, B>,
        counters: &mut Counters,
        target: u32,
    ) -> Option<TbId> {
        if let Some(id) = self.code.ibtc.lookup(target) {
            let tb = &self.code.blocks[id as usize];
            if !tb.dead && tb.pc == target {
                let ppage = tb.ppage;
                // Validate the mapping still matches before trusting it.
                if let Ok(pa) = self.translate_exec(&m.cpu, &m.sys, &mut m.bus, target) {
                    if page_of(pa) == ppage {
                        return Some(id);
                    }
                }
            }
        }
        match self.lookup_or_translate(m, counters, target) {
            Ok(id) => {
                self.code.ibtc.insert(target, id);
                Some(id)
            }
            Err(f) => {
                take_prefetch_abort::<I, B>(m, counters, f, target);
                None
            }
        }
    }
}

/// Execution context for one block run.
struct Ctx<'a, I: Isa, B: Bus> {
    cpu: &'a mut CpuState,
    sys: &'a mut I::Sys,
    bus: &'a mut B,
    tlb: &'a mut DbtTlb,
    code: &'a CodeCache,
    counters: &'a mut Counters,
    phase_mark: Option<u8>,
    /// Physical page whose translations a store just dirtied.
    code_write: Option<u32>,
}

impl<I: Isa, B: Bus> Ctx<'_, I, B> {
    fn translate_data(
        &mut self,
        va: u32,
        size: MemSize,
        access: AccessKind,
        nonpriv: bool,
    ) -> Result<(u32, bool), MemFault> {
        if !size.aligned(va) {
            return Err(MemFault {
                addr: va,
                access,
                kind: FaultKind::Unaligned,
            });
        }
        if !I::mmu_enabled(self.sys) {
            return Ok((va, self.code.page_has_code(page_of(va))));
        }
        let vpage = page_of(va);
        let (entry, flag) = match self.tlb.lookup(vpage) {
            Some(e) => {
                self.counters.tlb_hits += 1;
                (e.entry, e.contains_code)
            }
            None => {
                self.counters.tlb_misses += 1;
                static OBS_TLB_REFILLS: simbench_obs::Counter =
                    simbench_obs::Counter::new("dbt.tlb_refills");
                OBS_TLB_REFILLS.add(1);
                let e: TlbEntry = I::walk(self.sys, self.bus, va).map_err(|mut f| {
                    f.access = access;
                    f
                })?;
                let flag = self.code.page_has_code(e.ppage);
                self.tlb.insert(e, flag);
                // QEMU-style tlb_fill: the helper validates the fill with
                // a second walk and the memory op then *retries* through
                // the TLB — the cold-path overhead the paper measures.
                let _ = I::walk(self.sys, self.bus, va);
                let refilled = self.tlb.lookup(vpage).expect("entry just filled");
                (refilled.entry, refilled.contains_code)
            }
        };
        let pa = entry.check(va, access, self.cpu.level.is_kernel(), nonpriv)?;
        Ok((pa, flag))
    }
}

impl<I: Isa, B: Bus> ExecCtx for Ctx<'_, I, B> {
    fn reg(&self, r: u8) -> u32 {
        self.cpu.regs[r as usize]
    }
    fn set_reg(&mut self, r: u8, v: u32) {
        self.cpu.regs[r as usize] = v;
    }
    fn flags(&self) -> Flags {
        self.cpu.flags
    }
    fn set_flags(&mut self, f: Flags) {
        self.cpu.flags = f;
    }
    fn privileged(&self) -> bool {
        self.cpu.level.is_kernel()
    }

    fn read(&mut self, va: u32, size: MemSize, nonpriv: bool) -> Result<u32, MemFault> {
        self.counters.mem_reads += 1;
        if nonpriv {
            self.counters.nonpriv_accesses += 1;
        }
        let (pa, _) = self.translate_data(va, size, AccessKind::Read, nonpriv)?;
        if self.bus.is_mmio(pa) {
            self.counters.mmio_accesses += 1;
        }
        self.bus.read(pa, size).map_err(|mut f| {
            f.addr = va;
            f
        })
    }

    fn write(&mut self, va: u32, val: u32, size: MemSize, nonpriv: bool) -> Result<(), MemFault> {
        self.counters.mem_writes += 1;
        if nonpriv {
            self.counters.nonpriv_accesses += 1;
        }
        let (pa, contains_code) = self.translate_data(va, size, AccessKind::Write, nonpriv)?;
        if self.bus.is_mmio(pa) {
            self.counters.mmio_accesses += 1;
        }
        match self.bus.write(pa, val, size) {
            Ok(Some(BusEvent::PhaseMark(m))) => self.phase_mark = Some(m),
            Ok(_) => {}
            Err(mut f) => {
                f.addr = va;
                return Err(f);
            }
        }
        // Write-protect slow path: the page may hold translations.
        if contains_code && self.code.page_has_code(page_of(pa)) {
            self.code_write = Some(page_of(pa));
        }
        Ok(())
    }

    fn cop_read(&mut self, cp: u8, reg: u8) -> Result<u32, CopFault> {
        self.counters.coproc_accesses += 1;
        I::cop_read(self.cpu, self.sys, cp, reg)
    }

    fn cop_write(&mut self, cp: u8, reg: u8, val: u32) -> Result<(), CopFault> {
        self.counters.coproc_accesses += 1;
        match I::cop_write(self.cpu, self.sys, cp, reg, val)? {
            CopEffect::None => {}
            CopEffect::TlbInvPage(va) => {
                self.counters.tlb_invalidate_page += 1;
                self.tlb.invalidate_page(page_of(va));
            }
            CopEffect::TlbFlush => {
                self.counters.tlb_flushes += 1;
                self.tlb.flush();
            }
            CopEffect::ContextChanged => {
                self.tlb.flush();
            }
        }
        Ok(())
    }
}

/// How a block's execution ended.
enum BlockExit {
    Jump {
        target: u32,
        flavor: BranchFlavor,
    },
    Fallthrough,
    Trap {
        trap: Trap,
        next_pc: u32,
    },
    /// `pc` is the halt instruction's own address: the architectural
    /// PC rests there, matching the per-instruction engines.
    Halt {
        pc: u32,
    },
    CodeWrite {
        resume_pc: u32,
    },
}

impl<I: Isa, B: Bus> Engine<I, B> for Dbt<I> {
    fn info(&self) -> EngineInfo {
        EngineInfo {
            name: "dbt",
            execution_model: "DBT",
            memory_access: "Soft TLB + write protect",
            code_generation: "Block-based",
            control_flow_inter: "Block Cache",
            control_flow_intra: "Block Chaining",
            interrupts: "Block Boundaries",
            sync_exceptions: "Side Exit",
            undef_insn: "Translated",
        }
    }

    fn run(&mut self, m: &mut Machine<I, B>, limits: &RunLimits) -> RunOutcome {
        let t0 = Instant::now();
        let mut counters = Counters::default();
        let mut phase = PhaseTracker::new();
        self.tlb.flush();
        self.code.flush_all();
        self.code.full_flushes = 0;
        let mut chained_next: Option<TbId> = None;

        let exit = 'outer: loop {
            if counters.instructions >= limits.max_insns {
                break ExitReason::InsnLimit;
            }
            self.blocks_executed += 1;
            if let Some(wall) = limits.wall_limit {
                if self.blocks_executed.is_multiple_of(WALL_CHECK_BLOCKS) && t0.elapsed() >= wall {
                    break ExitReason::WallLimit;
                }
            }

            // Interrupts are only taken at block boundaries.
            if m.cpu.irq_enabled && m.bus.irq_pending() {
                counters.irqs_delivered += 1;
                let resume = m.cpu.pc;
                let vec = I::enter_exception(
                    &mut m.cpu,
                    &mut m.sys,
                    ExceptionKind::Irq,
                    ExcInfo::default(),
                    resume,
                );
                m.cpu.pc = vec;
                chained_next = None;
                continue;
            }

            let pc = m.cpu.pc;
            let cur: TbId = match chained_next.take() {
                Some(id)
                    if !self.code.blocks[id as usize].dead
                        && self.code.blocks[id as usize].pc == pc =>
                {
                    counters.block_chain_follows += 1;
                    let ppage = self.code.blocks[id as usize].ppage;
                    if self.entry_guard(&m.cpu, &m.sys, &mut m.bus, pc, ppage) {
                        id
                    } else {
                        match self.lookup_or_translate(m, &mut counters, pc) {
                            Ok(id) => id,
                            Err(f) => {
                                take_prefetch_abort::<I, B>(m, &mut counters, f, pc);
                                continue;
                            }
                        }
                    }
                }
                _ => match self.lookup_or_translate(m, &mut counters, pc) {
                    Ok(id) => id,
                    Err(f) => {
                        take_prefetch_abort::<I, B>(m, &mut counters, f, pc);
                        continue;
                    }
                },
            };

            let (tb_pc, end_pc, taken_target) = {
                let tb = &self.code.blocks[cur as usize];
                (tb.pc, tb.end_pc, tb.taken_target)
            };
            // Dispatch is a pure slice walk over the shared step arena.
            // The slice and `ctx.code` are both immutable borrows of
            // `self.code` (coexisting fine with the mutable `self.tlb`
            // borrow), so the arena cannot move or be invalidated
            // mid-block; each step is copied out by value (`TbStep` is
            // small and `Copy`).
            let steps = self.code.steps_of(cur);

            let mut ctx = Ctx::<I, B> {
                cpu: &mut m.cpu,
                sys: &mut m.sys,
                bus: &mut m.bus,
                tlb: &mut self.tlb,
                code: &self.code,
                counters: &mut counters,
                phase_mark: None,
                code_write: None,
            };

            let mut exit = BlockExit::Fallthrough;
            // Track the current instruction's own address (the previous
            // step's `next_pc`; instructions in a block are contiguous)
            // so a mid-block halt can commit an exact architectural PC.
            let mut insn_pc = tb_pc;
            let mut insn_end = tb_pc;
            for &step in steps {
                if step.insn_start {
                    ctx.counters.instructions += 1;
                    insn_pc = insn_end;
                }
                insn_end = step.next_pc;
                ctx.counters.uops += 1;
                match step_op(&mut ctx, &step.op) {
                    OpOutcome::Next => {
                        if ctx.code_write.is_some() {
                            exit = BlockExit::CodeWrite {
                                resume_pc: step.next_pc,
                            };
                            break;
                        }
                    }
                    OpOutcome::Jump { target, flavor } => {
                        count_branch(ctx.counters, tb_pc, target, flavor);
                        exit = BlockExit::Jump { target, flavor };
                        break;
                    }
                    OpOutcome::Trap(t) => {
                        exit = BlockExit::Trap {
                            trap: t,
                            next_pc: step.next_pc,
                        };
                        break;
                    }
                    OpOutcome::Halt => {
                        exit = BlockExit::Halt { pc: insn_pc };
                        break;
                    }
                }
            }
            let mark = ctx.phase_mark.take();
            let dirty_page = ctx.code_write.take();

            if let Some(mark) = mark {
                phase.on_mark(mark, &counters);
            }

            match exit {
                BlockExit::Halt { pc } => {
                    // Leave the architectural PC at the halt instruction,
                    // exactly like the per-instruction engines — found by
                    // the differ when a halt sits mid-block (stale PC
                    // from the last block exit otherwise).
                    m.cpu.pc = pc;
                    break 'outer ExitReason::Halted;
                }
                BlockExit::Fallthrough => {
                    m.cpu.pc = end_pc;
                    chained_next = self.chain_to(m, &mut counters, cur, end_pc, false);
                }
                BlockExit::Jump { target, flavor } => {
                    m.cpu.pc = target;
                    match flavor {
                        BranchFlavor::Direct if Some(target) == taken_target => {
                            chained_next = self.chain_to(m, &mut counters, cur, target, true);
                        }
                        BranchFlavor::Direct => {
                            chained_next = None;
                        }
                        BranchFlavor::Indirect => {
                            chained_next = self.resolve_indirect(m, &mut counters, target);
                        }
                    }
                }
                BlockExit::CodeWrite { resume_pc } => {
                    counters.code_invalidations += 1;
                    if let Some(p) = dirty_page {
                        if self.profile.smc_full_flush {
                            self.code.flush_all();
                        } else {
                            self.code.invalidate_page(p);
                        }
                    }
                    m.cpu.pc = resume_pc;
                    chained_next = None;
                }
                BlockExit::Trap { trap, next_pc } => {
                    chained_next = None;
                    match trap {
                        Trap::Eret => {
                            m.cpu.pc = I::leave_exception(&mut m.cpu, &mut m.sys);
                        }
                        Trap::Syscall(n) => {
                            counters.syscalls += 1;
                            self.exception_sync(m, tb_pc, false);
                            let vec = I::enter_exception(
                                &mut m.cpu,
                                &mut m.sys,
                                ExceptionKind::Syscall,
                                ExcInfo::syscall(n),
                                next_pc,
                            );
                            m.cpu.pc = vec;
                        }
                        Trap::Undef => {
                            counters.undef_insns += 1;
                            self.exception_sync(m, tb_pc, false);
                            let vec = I::enter_exception(
                                &mut m.cpu,
                                &mut m.sys,
                                ExceptionKind::Undef,
                                ExcInfo::default(),
                                next_pc,
                            );
                            m.cpu.pc = vec;
                        }
                        Trap::DataFault(f) => {
                            counters.data_faults += 1;
                            self.exception_sync(m, tb_pc, true);
                            let vec = I::enter_exception(
                                &mut m.cpu,
                                &mut m.sys,
                                ExceptionKind::DataAbort,
                                ExcInfo::from_fault(f),
                                next_pc,
                            );
                            m.cpu.pc = vec;
                        }
                    }
                }
            }
        };

        RunOutcome {
            exit,
            wall: t0.elapsed(),
            counters,
            kernel: phase.into_kernel(),
        }
    }
}

/// Take a prefetch abort (used from several dispatch points).
fn take_prefetch_abort<I: Isa, B: Bus>(
    m: &mut Machine<I, B>,
    counters: &mut Counters,
    f: MemFault,
    pc: u32,
) {
    counters.insn_faults += 1;
    let vec = I::enter_exception(
        &mut m.cpu,
        &mut m.sys,
        ExceptionKind::PrefetchAbort,
        ExcInfo::from_fault(f),
        pc,
    );
    m.cpu.pc = vec;
}

/// Classify and count a taken branch.
fn count_branch(counters: &mut Counters, from_pc: u32, target: u32, flavor: BranchFlavor) {
    let same_page = page_of(from_pc) == page_of(target);
    match (flavor, same_page) {
        (BranchFlavor::Direct, true) => counters.branch_intra_direct += 1,
        (BranchFlavor::Direct, false) => counters.branch_inter_direct += 1,
        (BranchFlavor::Indirect, true) => counters.branch_intra_indirect += 1,
        (BranchFlavor::Indirect, false) => counters.branch_inter_indirect += 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbench_core::asm::{PReg, PortableAsm};
    use simbench_core::bus::FlatRam;
    use simbench_core::ir::AluOp;
    use simbench_isa_armlet::{Armlet, ArmletAsm};

    fn run_dbt(asm: ArmletAsm, entry: u32) -> (Machine<Armlet, FlatRam>, RunOutcome) {
        let img = asm.finish(entry);
        let mut m = Machine::<Armlet, _>::boot(&img, FlatRam::new(1 << 20));
        let mut e = Dbt::<Armlet>::new();
        let out = e.run(&mut m, &RunLimits::insns(10_000_000));
        (m, out)
    }

    #[test]
    fn halt_mid_block_commits_exact_pc() {
        // Regression (found by the differ): the halt sits four
        // instructions into its translation block; the architectural PC
        // must rest on the halt itself, not the last block exit.
        let mut a = ArmletAsm::new();
        a.org(0x8000);
        let body = a.new_label();
        a.b(body);
        a.bind(body);
        a.mov_imm(PReg::A, 1);
        a.mov_imm(PReg::B, 2);
        a.mov_imm(PReg::C, 3);
        a.mov_imm(PReg::D, 4);
        a.halt();
        let halt_pc = 0x8000 + 4 + 4 * 4; // branch + four movs
        let (m, out) = run_dbt(a, 0x8000);
        assert_eq!(out.exit, ExitReason::Halted);
        assert_eq!(out.counters.instructions, 6);
        assert_eq!(m.cpu.pc, halt_pc, "PC rests on the halt instruction");
    }

    #[test]
    fn arithmetic_loop_matches_interp_semantics() {
        let mut a = ArmletAsm::new();
        a.org(0x8000);
        a.mov_imm(PReg::A, 0);
        a.mov_imm(PReg::B, 1000);
        let top = a.new_label();
        a.bind(top);
        a.alu_ri(AluOp::Add, PReg::A, PReg::A, 3);
        a.alu_ri(AluOp::Sub, PReg::B, PReg::B, 1);
        a.cmp_ri(PReg::B, 0);
        a.b_cond(simbench_core::ir::Cond::Ne, top);
        a.halt();
        let (m, out) = run_dbt(a, 0x8000);
        assert_eq!(out.exit, ExitReason::Halted);
        assert_eq!(m.cpu.regs[0], 3000);
        // The loop body translates once and is re-dispatched.
        assert!(out.counters.blocks_translated < 10);
        assert!(
            out.counters.block_chain_follows > 500,
            "intra-page loop edge must chain: {}",
            out.counters.block_chain_follows
        );
    }

    #[test]
    fn self_modifying_code_invalidates() {
        let mut a = ArmletAsm::new();
        a.org(0x8000);
        // Patch the word at `slot` from `mov D, #1` to `mov D, #2`,
        // then execute it.
        let slot = a.new_label();
        a.mov_label(PReg::A, slot);
        // New encoding: movw r3, #2 (class 3, rd=3).
        a.mov_imm(PReg::B, 0x3030_0000 | 2);
        a.store(PReg::B, PReg::A, 0);
        a.bind(slot);
        a.mov_imm(PReg::D, 1);
        a.halt();
        let (m, out) = run_dbt(a, 0x8000);
        assert_eq!(out.exit, ExitReason::Halted);
        assert_eq!(m.cpu.regs[3], 2, "rewritten instruction must execute");
        assert!(out.counters.code_invalidations >= 1);
    }

    #[test]
    fn exceptions_side_exit_and_resume() {
        let mut a = ArmletAsm::new();
        a.org(0);
        let handler = a.new_label();
        a.b(handler); // undef vector
        a.org(0x300);
        a.bind(handler);
        a.alu_ri(AluOp::Add, PReg::C, PReg::C, 1);
        a.eret();
        a.org(0x8000);
        a.mov_imm(PReg::C, 0);
        a.udf();
        a.udf();
        a.halt();
        let (m, out) = run_dbt(a, 0x8000);
        assert_eq!(out.exit, ExitReason::Halted);
        assert_eq!(m.cpu.regs[2], 2);
        assert_eq!(out.counters.undef_insns, 2);
    }

    #[test]
    fn version_profiles_agree_on_architecture() {
        // The same program must produce identical architectural results
        // on the oldest and newest version profiles.
        let build = || {
            let mut a = ArmletAsm::new();
            a.org(0x8000);
            a.mov_imm(PReg::A, 7);
            let f = a.new_label();
            a.call(f);
            a.halt();
            a.bind(f);
            a.alu_ri(AluOp::Mul, PReg::A, PReg::A, 6);
            a.ret();
            a.finish(0x8000)
        };
        let mut results = Vec::new();
        for prof in [QEMU_VERSIONS[0], *QEMU_VERSIONS.last().unwrap()] {
            let img = build();
            let mut m = Machine::<Armlet, _>::boot(&img, FlatRam::new(1 << 20));
            let mut e = Dbt::<Armlet>::with_profile(prof);
            let out = e.run(&mut m, &RunLimits::insns(1000));
            assert_eq!(out.exit, ExitReason::Halted);
            results.push(m.cpu.regs[0]);
        }
        assert_eq!(results[0], 42);
        assert_eq!(results, vec![42, 42]);
    }

    #[test]
    fn optimizer_reduces_executed_uops() {
        let build = || {
            let mut a = ArmletAsm::new();
            a.org(0x8000);
            // A constant chain the optimizer can fold.
            a.mov_imm(PReg::A, 10);
            a.alu_ri(AluOp::Add, PReg::B, PReg::A, 5);
            a.alu_ri(AluOp::Lsl, PReg::C, PReg::B, 2);
            a.mov_imm(PReg::D, 0xDEAD_BEEF); // movw+movt: foldable movt
            a.halt();
            a.finish(0x8000)
        };
        let mut uops = Vec::new();
        for level in [0u8, 2] {
            let img = build();
            let mut m = Machine::<Armlet, _>::boot(&img, FlatRam::new(1 << 20));
            let prof = VersionProfile {
                optimizer_level: level,
                ..VersionProfile::latest()
            };
            let mut e = Dbt::<Armlet>::with_profile(prof);
            let out = e.run(&mut m, &RunLimits::insns(1000));
            assert_eq!(out.exit, ExitReason::Halted);
            assert_eq!(m.cpu.regs[2], 60);
            assert_eq!(m.cpu.regs[3], 0xDEAD_BEEF);
            uops.push(out.counters.uops);
        }
        assert_eq!(
            uops[0], uops[1],
            "onstant folding preserves uop count (ops are rewritten, not removed)"
        );
    }

    #[test]
    fn block_cache_hit_on_revisit() {
        let mut a = ArmletAsm::new();
        a.org(0x8000);
        let f = a.new_label();
        a.mov_imm(PReg::B, 0);
        a.mov_label(PReg::E, f);
        let top = a.new_label();
        a.bind(top);
        a.call_reg(PReg::E); // indirect call: exercises the IBTC
        a.cmp_ri(PReg::B, 50);
        a.b_cond(simbench_core::ir::Cond::Ne, top);
        a.halt();
        a.bind(f);
        a.alu_ri(AluOp::Add, PReg::B, PReg::B, 1);
        a.ret();
        let (m, out) = run_dbt(a, 0x8000);
        assert_eq!(out.exit, ExitReason::Halted);
        assert_eq!(m.cpu.regs[1], 50);
        assert!(
            out.counters.blocks_translated <= 8,
            "translated {}",
            out.counters.blocks_translated
        );
    }
}

//! The DBT engine's software TLB with code-page write protection.
//!
//! Each entry carries a `contains_code` flag (the analogue of QEMU's
//! `TLB_NOTDIRTY`): stores through flagged entries take a slow path that
//! checks for — and invalidates — translations in the target page. Pages
//! acquire the flag at fill time; when a page *gains* its first
//! translation block after entries were already cached, the engine
//! flushes this TLB so stale unflagged entries cannot miss an
//! invalidation.

use simbench_core::mmu::TlbEntry;

const INVALID: u32 = u32::MAX;

/// One cached translation plus the write-protection flag.
#[derive(Debug, Clone, Copy)]
pub struct DbtTlbEntry {
    /// The architectural translation.
    pub entry: TlbEntry,
    /// True if the physical page holds translation blocks.
    pub contains_code: bool,
}

/// Direct-mapped software TLB with a small fully-associative victim
/// buffer (as QEMU keeps per-mmu-idx victim TLBs).
#[derive(Debug, Clone)]
pub struct DbtTlb {
    slots: Vec<(u32, DbtTlbEntry)>,
    victims: Vec<(u32, DbtTlbEntry)>,
    mask: u32,
    hits: u64,
    misses: u64,
}

impl DbtTlb {
    /// A TLB with `1 << bits` slots.
    pub fn new(bits: u8) -> Self {
        let n = 1usize << bits;
        let dummy = DbtTlbEntry {
            entry: TlbEntry {
                vpage: 0,
                ppage: 0,
                user: simbench_core::mmu::Perms::NONE,
                kernel: simbench_core::mmu::Perms::NONE,
            },
            contains_code: false,
        };
        DbtTlb {
            // lint:allow(hot-path): one-time constructor allocation
            slots: vec![(INVALID, dummy); n],
            victims: Vec::with_capacity(8),
            mask: n as u32 - 1,
            hits: 0,
            misses: 0,
        }
    }

    /// Look up a virtual page: main array first, then the victim buffer
    /// (promoting on a victim hit).
    #[inline]
    pub fn lookup(&mut self, vpage: u32) -> Option<DbtTlbEntry> {
        let slot = &self.slots[(vpage & self.mask) as usize];
        if slot.0 == vpage {
            self.hits += 1;
            return Some(slot.1);
        }
        if let Some(i) = self.victims.iter().position(|v| v.0 == vpage) {
            let (tag, entry) = self.victims.swap_remove(i);
            self.insert(entry.entry, entry.contains_code);
            self.hits += 1;
            debug_assert_eq!(tag, vpage);
            return Some(entry);
        }
        self.misses += 1;
        None
    }

    /// Install a translation, spilling any evicted entry to the victim
    /// buffer.
    #[inline]
    pub fn insert(&mut self, entry: TlbEntry, contains_code: bool) {
        let vpage = entry.vpage;
        let slot = &mut self.slots[(vpage & self.mask) as usize];
        if slot.0 != INVALID && slot.0 != vpage {
            if self.victims.len() == 8 {
                self.victims.remove(0);
            }
            self.victims.push(*slot);
        }
        *slot = (
            vpage,
            DbtTlbEntry {
                entry,
                contains_code,
            },
        );
    }

    /// Invalidate the entry covering `vpage` if cached.
    pub fn invalidate_page(&mut self, vpage: u32) {
        let slot = &mut self.slots[(vpage & self.mask) as usize];
        if slot.0 == vpage {
            slot.0 = INVALID;
        }
        self.victims.retain(|v| v.0 != vpage);
    }

    /// Drop everything.
    pub fn flush(&mut self) {
        for s in &mut self.slots {
            s.0 = INVALID;
        }
        self.victims.clear();
    }

    /// (hits, misses).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbench_core::mmu::Perms;

    fn e(vpage: u32) -> TlbEntry {
        TlbEntry {
            vpage,
            ppage: vpage + 100,
            user: Perms::RWX,
            kernel: Perms::RWX,
        }
    }

    #[test]
    fn flag_round_trip() {
        let mut t = DbtTlb::new(4);
        t.insert(e(3), true);
        let got = t.lookup(3).unwrap();
        assert!(got.contains_code);
        assert_eq!(got.entry.ppage, 103);
        t.insert(e(3), false);
        assert!(!t.lookup(3).unwrap().contains_code);
    }

    #[test]
    fn aliasing_spills_to_victims() {
        let mut t = DbtTlb::new(2); // 4 slots
        t.insert(e(1), false);
        t.insert(e(5), false); // aliases slot 1 → 1 goes to the victims
        assert!(t.lookup(5).is_some());
        assert!(t.lookup(1).is_some(), "victim buffer holds the alias");
        // The victim hit re-promoted 1, spilling 5.
        assert!(t.lookup(5).is_some());
        t.invalidate_page(5);
        assert!(t.lookup(5).is_none());
        t.insert(e(2), false);
        t.flush();
        assert!(t.lookup(2).is_none());
    }

    #[test]
    fn victim_capacity_bounded() {
        let mut t = DbtTlb::new(0); // 1 slot: every insert evicts
        for v in 0..20 {
            t.insert(e(v), false);
        }
        // Only the last 8 victims plus the resident entry survive.
        assert!(t.lookup(19).is_some());
        assert!(t.lookup(0).is_none());
        assert!(t.lookup(12).is_some());
    }
}

//! The DBT engine's version matrix.
//!
//! The paper benchmarks twenty QEMU releases (1.7.0 → 2.5.0-rc2) and uses
//! SimBench to attribute their aggregate performance drift to specific
//! mechanisms. We cannot rebuild historical QEMU here, so each release
//! name maps to a [`VersionProfile`]: a set of *real code-path toggles*
//! in our engine chosen to mirror the documented history the paper
//! discusses —
//!
//! * 2.0.0 ships "improvements to the TCG optimiser" (our optimizer
//!   level rises, lifting most categories),
//! * 2.2.x improves indirect-branch handling (IBTC grows; the sjeng-like
//!   workload peaks at 2.2.1 exactly as in Fig 2),
//! * from 2.1 onward successive releases add per-block-entry safety
//!   guards and chain revalidation (the control-flow degradation of
//!   Fig 6),
//! * 2.3.0 makes exception side-exits eagerly resynchronise and unchain
//!   (the exception-handling regression),
//! * 2.5.0-rc0 adds a data-abort fast path (the 4–8× data-fault speedup
//!   the paper calls out, invisible in SPEC).

/// Mechanism configuration for one engine version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionProfile {
    /// Release name, e.g. `"v2.0.0"`.
    pub name: &'static str,
    /// IR optimizer level, 0–2. Higher = slower translation, faster code.
    pub optimizer_level: u8,
    /// Chain direct branches within a page.
    pub chain_intra: bool,
    /// Chain direct branches across pages.
    pub chain_inter: bool,
    /// Per-block-entry revalidation passes (0–3). Models accumulated
    /// safety checks on the hot dispatch path.
    pub entry_guard_level: u8,
    /// Indirect-branch target cache size in bits (0 disables it).
    pub ibtc_bits: u8,
    /// Synchronous exceptions eagerly unchain all blocks and flush the
    /// IBTC before vectoring (the slow, "safe" side-exit).
    pub eager_exception_sync: bool,
    /// Data aborts skip the eager sync (QEMU 2.5.0-rc0's fast path).
    pub data_fault_fast_path: bool,
    /// Self-modifying code flushes the whole code cache rather than one
    /// page.
    pub smc_full_flush: bool,
    /// Software TLB size in bits.
    pub tlb_bits: u8,
}

impl VersionProfile {
    /// The newest profile — what plain `Dbt::new()` uses.
    pub fn latest() -> Self {
        *QEMU_VERSIONS.last().unwrap()
    }

    /// Look up a profile by name.
    pub fn by_name(name: &str) -> Option<Self> {
        QEMU_VERSIONS.iter().find(|v| v.name == name).copied()
    }
}

impl Default for VersionProfile {
    fn default() -> Self {
        Self::latest()
    }
}

const BASE: VersionProfile = VersionProfile {
    name: "base",
    optimizer_level: 1,
    chain_intra: true,
    chain_inter: false,
    entry_guard_level: 0,
    ibtc_bits: 6,
    eager_exception_sync: false,
    data_fault_fast_path: false,
    smc_full_flush: false,
    tlb_bits: 10,
};

/// The twenty benchmarked engine versions, named after the QEMU releases
/// of the paper's Figs 2, 6 and 8, oldest first.
pub const QEMU_VERSIONS: &[VersionProfile] = &[
    VersionProfile {
        name: "v1.7.0",
        ..BASE
    },
    VersionProfile {
        name: "v1.7.1",
        ..BASE
    },
    VersionProfile {
        name: "v1.7.2",
        ..BASE
    },
    // 2.0.0: TCG optimiser improvements.
    VersionProfile {
        name: "v2.0.0",
        optimizer_level: 2,
        ..BASE
    },
    VersionProfile {
        name: "v2.0.1",
        optimizer_level: 2,
        ..BASE
    },
    VersionProfile {
        name: "v2.0.2",
        optimizer_level: 2,
        ..BASE
    },
    // 2.1.x: first entry guards appear; exception path gains work.
    VersionProfile {
        name: "v2.1.0",
        optimizer_level: 2,
        entry_guard_level: 1,
        ..BASE
    },
    VersionProfile {
        name: "v2.1.1",
        optimizer_level: 2,
        entry_guard_level: 1,
        ..BASE
    },
    VersionProfile {
        name: "v2.1.2",
        optimizer_level: 2,
        entry_guard_level: 1,
        ..BASE
    },
    VersionProfile {
        name: "v2.1.3",
        optimizer_level: 2,
        entry_guard_level: 1,
        ..BASE
    },
    // 2.2.x: bigger IBTC (indirect control flow peaks here).
    VersionProfile {
        name: "v2.2.0",
        optimizer_level: 2,
        entry_guard_level: 1,
        ibtc_bits: 9,
        ..BASE
    },
    VersionProfile {
        name: "v2.2.1",
        optimizer_level: 2,
        entry_guard_level: 1,
        ibtc_bits: 9,
        ..BASE
    },
    // 2.3.x: eager exception sync lands; guards deepen.
    VersionProfile {
        name: "v2.3.0",
        optimizer_level: 2,
        entry_guard_level: 2,
        ibtc_bits: 9,
        eager_exception_sync: true,
        ..BASE
    },
    VersionProfile {
        name: "v2.3.1",
        optimizer_level: 2,
        entry_guard_level: 2,
        ibtc_bits: 9,
        eager_exception_sync: true,
        ..BASE
    },
    // 2.4.x: more guards; indirect cache shrinks under refactoring.
    VersionProfile {
        name: "v2.4.0",
        optimizer_level: 2,
        entry_guard_level: 3,
        ibtc_bits: 8,
        eager_exception_sync: true,
        ..BASE
    },
    VersionProfile {
        name: "v2.4.0.1",
        optimizer_level: 2,
        entry_guard_level: 3,
        ibtc_bits: 8,
        eager_exception_sync: true,
        ..BASE
    },
    VersionProfile {
        name: "v2.4.1",
        optimizer_level: 2,
        entry_guard_level: 3,
        ibtc_bits: 8,
        eager_exception_sync: true,
        ..BASE
    },
    // 2.5.0-rc*: data-abort fast path; control flow still guarded.
    VersionProfile {
        name: "v2.5.0-rc0",
        optimizer_level: 2,
        entry_guard_level: 3,
        ibtc_bits: 8,
        eager_exception_sync: true,
        data_fault_fast_path: true,
        ..BASE
    },
    VersionProfile {
        name: "v2.5.0-rc1",
        optimizer_level: 2,
        entry_guard_level: 3,
        ibtc_bits: 8,
        eager_exception_sync: true,
        data_fault_fast_path: true,
        ..BASE
    },
    VersionProfile {
        name: "v2.5.0-rc2",
        optimizer_level: 2,
        entry_guard_level: 3,
        ibtc_bits: 8,
        eager_exception_sync: true,
        data_fault_fast_path: true,
        ..BASE
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_versions() {
        assert_eq!(QEMU_VERSIONS.len(), 20);
    }

    #[test]
    fn names_unique_and_ordered() {
        let names: Vec<_> = QEMU_VERSIONS.iter().map(|v| v.name).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names, dedup);
        assert_eq!(names[0], "v1.7.0");
        assert_eq!(*names.last().unwrap(), "v2.5.0-rc2");
    }

    #[test]
    fn lookup_by_name() {
        let v = VersionProfile::by_name("v2.0.0").unwrap();
        assert_eq!(v.optimizer_level, 2);
        assert!(VersionProfile::by_name("v9.9.9").is_none());
    }

    #[test]
    fn history_shape() {
        let v170 = VersionProfile::by_name("v1.7.0").unwrap();
        let v221 = VersionProfile::by_name("v2.2.1").unwrap();
        let rc2 = VersionProfile::by_name("v2.5.0-rc2").unwrap();
        assert!(
            v221.ibtc_bits > v170.ibtc_bits,
            "2.2 improves indirect branches"
        );
        assert!(
            rc2.entry_guard_level > v170.entry_guard_level,
            "late releases add guards"
        );
        assert!(rc2.data_fault_fast_path && !v221.data_fault_fast_path);
    }
}

//! The translation-time IR optimizer.
//!
//! Level 0 does nothing. Level 1 runs block-local constant folding.
//! Level 2 additionally eliminates dead flag updates and drops NOPs.
//! Higher levels cost translation time (the Code Generation benchmarks
//! see this) and speed up generated code (SPEC-like workloads see that),
//! reproducing the trade-off the paper attributes to QEMU 2.0's "TCG
//! optimiser improvements".

use simbench_core::cpu::MAX_GPRS;
use simbench_core::ir::{AluOp, Op, Operand};

use crate::cache::TbStep;

/// Run the optimizer at `level` over a translated block.
pub fn optimize(steps: &mut Vec<TbStep>, level: u8) {
    if level >= 1 {
        constant_fold(steps);
    }
    if level >= 2 {
        dead_flags(steps);
        drop_nops(steps);
    }
}

/// Block-local constant propagation: registers whose value is known from
/// an immediate move earlier in the block fold into later immediate
/// operations.
fn constant_fold(steps: &mut [TbStep]) {
    let mut known: [Option<u32>; MAX_GPRS] = [None; MAX_GPRS];
    for step in steps.iter_mut() {
        match &mut step.op {
            Op::Alu {
                op,
                rd,
                rn,
                src,
                set_flags,
            } => {
                let (op, rd, rn, mut src, set_flags) = (*op, *rd, *rn, *src, *set_flags);
                // Substitute a known register source with its constant.
                if let Operand::Reg(r) = src {
                    if let Some(v) = known[r as usize] {
                        src = Operand::Imm(v);
                    }
                }
                let rn_val = if matches!(op, AluOp::Mov | AluOp::Mvn) {
                    Some(0)
                } else {
                    known[rn as usize]
                };
                // Adc/Sbc consume the carry flag; they are not foldable
                // without flag knowledge.
                let foldable = !set_flags && !matches!(op, AluOp::Adc | AluOp::Sbc);
                if let (Some(a), Operand::Imm(b), true) = (rn_val, src, foldable) {
                    // Fully foldable: compute now, emit a move.
                    let flags = simbench_core::cpu::Flags::default();
                    let value = simbench_core::alu::eval(op, a, b, flags).value;
                    step.op = Op::Alu {
                        op: AluOp::Mov,
                        rd,
                        rn: 0,
                        src: Operand::Imm(value),
                        set_flags: false,
                    };
                    known[rd as usize] = Some(value);
                    continue;
                }
                step.op = Op::Alu {
                    op,
                    rd,
                    rn,
                    src,
                    set_flags,
                };
                // Track plain immediate moves; anything else clobbers.
                if let (AluOp::Mov, Operand::Imm(v), false) = (op, src, set_flags) {
                    known[rd as usize] = Some(v);
                } else {
                    known[rd as usize] = None;
                }
            }
            Op::Cmp { src, .. } => {
                if let Operand::Reg(r) = *src {
                    if let Some(v) = known[r as usize] {
                        *src = Operand::Imm(v);
                    }
                }
            }
            Op::Load { rd, .. } | Op::CopRead { rd, .. } => known[*rd as usize] = None,
            Op::Ret(simbench_core::ir::RetKind::Pop(sp)) => known[*sp as usize] = None,
            Op::Call {
                link: simbench_core::ir::LinkKind::Register(lr),
                ..
            }
            | Op::CallReg {
                link: simbench_core::ir::LinkKind::Register(lr),
                ..
            } => known[*lr as usize] = None,
            Op::Call {
                link: simbench_core::ir::LinkKind::Push(sp),
                ..
            }
            | Op::CallReg {
                link: simbench_core::ir::LinkKind::Push(sp),
                ..
            } => known[*sp as usize] = None,
            _ => {}
        }
    }
}

/// Clear `set_flags` on ALU ops whose flags are overwritten before any
/// reader. Conservative: block exits count as readers (the next block
/// may branch on the flags).
fn dead_flags(steps: &mut [TbStep]) {
    // Walk backwards: a flag write is dead if the next flag event going
    // forward is another write.
    let mut live = true; // flags live at block exit
    for step in steps.iter_mut().rev() {
        match &mut step.op {
            Op::Alu { set_flags, op, .. } => {
                let reads = matches!(op, AluOp::Adc | AluOp::Sbc);
                if *set_flags {
                    if !live {
                        *set_flags = false;
                    }
                    // This op defines the flags for earlier code...
                    live = reads; // ...unless it also reads them.
                } else if reads {
                    live = true;
                }
            }
            Op::Cmp { .. } => live = false, // cmp overwrites all flags
            Op::BranchCond { .. } => live = true,
            _ => {}
        }
    }
}

/// Drop NOP steps that are not instruction starts (instruction-start
/// steps carry retirement accounting and must survive).
fn drop_nops(steps: &mut Vec<TbStep>) {
    steps.retain(|s| !matches!(s.op, Op::Nop) || s.insn_start);
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbench_core::ir::Cond;

    fn step(op: Op) -> TbStep {
        TbStep {
            op,
            next_pc: 0,
            insn_start: true,
        }
    }

    fn mov(rd: u8, v: u32) -> Op {
        Op::Alu {
            op: AluOp::Mov,
            rd,
            rn: 0,
            src: Operand::Imm(v),
            set_flags: false,
        }
    }

    #[test]
    fn folds_constant_chains() {
        let mut steps = vec![
            step(mov(0, 10)),
            step(Op::Alu {
                op: AluOp::Add,
                rd: 1,
                rn: 0,
                src: Operand::Imm(5),
                set_flags: false,
            }),
            step(Op::Alu {
                op: AluOp::Lsl,
                rd: 2,
                rn: 1,
                src: Operand::Imm(2),
                set_flags: false,
            }),
        ];
        optimize(&mut steps, 1);
        assert_eq!(steps[1].op, mov(1, 15));
        assert_eq!(steps[2].op, mov(2, 60));
    }

    #[test]
    fn fold_stops_at_loads() {
        let mut steps = vec![
            step(mov(0, 10)),
            step(Op::Load {
                rd: 0,
                base: 3,
                off: 0,
                size: simbench_core::ir::MemSize::B4,
                nonpriv: false,
            }),
            step(Op::Alu {
                op: AluOp::Add,
                rd: 1,
                rn: 0,
                src: Operand::Imm(5),
                set_flags: false,
            }),
        ];
        optimize(&mut steps, 1);
        // r0 is no longer a known constant after the load.
        assert!(matches!(steps[2].op, Op::Alu { op: AluOp::Add, .. }));
    }

    #[test]
    fn flag_setting_ops_not_folded() {
        let mut steps = vec![
            step(mov(0, 10)),
            step(Op::Alu {
                op: AluOp::Add,
                rd: 1,
                rn: 0,
                src: Operand::Imm(5),
                set_flags: true,
            }),
            step(Op::BranchCond {
                cond: Cond::Eq,
                target: 0x100,
            }),
        ];
        optimize(&mut steps, 2);
        assert!(
            matches!(
                steps[1].op,
                Op::Alu {
                    set_flags: true,
                    ..
                }
            ),
            "flag producer feeding a conditional branch must survive"
        );
    }

    #[test]
    fn dead_flags_cleared() {
        let mut steps = vec![
            step(Op::Alu {
                op: AluOp::Add,
                rd: 1,
                rn: 1,
                src: Operand::Imm(1),
                set_flags: true,
            }),
            step(Op::Cmp {
                rn: 1,
                src: Operand::Imm(5),
                is_tst: false,
            }),
            step(Op::BranchCond {
                cond: Cond::Ne,
                target: 0x100,
            }),
        ];
        optimize(&mut steps, 2);
        assert!(
            matches!(
                steps[0].op,
                Op::Alu {
                    set_flags: false,
                    ..
                }
            ),
            "flags overwritten by cmp before any read"
        );
    }

    #[test]
    fn nops_dropped_unless_insn_start() {
        let mut steps = vec![
            step(Op::Nop),
            TbStep {
                op: Op::Nop,
                next_pc: 0,
                insn_start: false,
            },
            step(mov(0, 1)),
        ];
        optimize(&mut steps, 2);
        assert_eq!(steps.len(), 2);
    }

    #[test]
    fn level_zero_is_identity() {
        let mut steps = vec![
            step(mov(0, 10)),
            step(Op::Alu {
                op: AluOp::Add,
                rd: 1,
                rn: 0,
                src: Operand::Imm(5),
                set_flags: false,
            }),
        ];
        let before = steps.clone();
        optimize(&mut steps, 0);
        assert_eq!(steps, before);
    }
}

//! Translation-block cache: arena, lookup map, per-page index for
//! self-modifying-code invalidation, chaining slots, and the
//! indirect-branch target cache (IBTC).

use std::collections::HashMap;
use std::rc::Rc;

use simbench_core::ir::Op;

/// Index of a block in the arena.
pub type TbId = u32;

/// One executable micro-op within a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TbStep {
    /// The operation.
    pub op: Op,
    /// Address of the *next* instruction (exception return point).
    pub next_pc: u32,
    /// True on the first step of each guest instruction (drives
    /// instruction retirement accounting).
    pub insn_start: bool,
}

/// A translated basic block.
#[derive(Debug, Clone)]
pub struct Tb {
    /// Guest virtual start address.
    pub pc: u32,
    /// Physical page the code was read from (part of the lookup key).
    pub ppage: u32,
    /// The executable steps. `Rc` so execution can outlive invalidation.
    pub steps: Rc<[TbStep]>,
    /// Address following the last instruction (fallthrough target).
    pub end_pc: u32,
    /// Static target of the block-ending direct branch, if any (drives
    /// taken-edge chaining).
    pub taken_target: Option<u32>,
    /// Tombstone: invalidated, awaiting arena flush.
    pub dead: bool,
    /// Chain slot for the taken direct-branch successor.
    pub chain_taken: Option<TbId>,
    /// Chain slot for the fallthrough successor.
    pub chain_fall: Option<TbId>,
}

/// Direct-mapped indirect-branch target cache mapping guest PC → block.
#[derive(Debug)]
pub struct Ibtc {
    slots: Vec<(u32, TbId)>,
    mask: u32,
}

impl Ibtc {
    /// An IBTC with `1 << bits` slots; `bits == 0` disables it.
    pub fn new(bits: u8) -> Self {
        let n = if bits == 0 { 0 } else { 1usize << bits };
        Ibtc {
            slots: vec![(u32::MAX, 0); n],
            mask: n.saturating_sub(1) as u32,
        }
    }

    /// Predicted block for a target PC.
    #[inline]
    pub fn lookup(&self, pc: u32) -> Option<TbId> {
        if self.slots.is_empty() {
            return None;
        }
        let slot = &self.slots[(pc >> 2 & self.mask) as usize];
        (slot.0 == pc).then_some(slot.1)
    }

    /// Record a resolved target.
    #[inline]
    pub fn insert(&mut self, pc: u32, id: TbId) {
        if self.slots.is_empty() {
            return;
        }
        let i = (pc >> 2 & self.mask) as usize;
        self.slots[i] = (pc, id);
    }

    /// Drop all predictions.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            s.0 = u32::MAX;
        }
    }
}

/// The code cache.
#[derive(Debug)]
pub struct CodeCache {
    /// Block arena (tombstoned blocks stay until a full flush).
    pub blocks: Vec<Tb>,
    /// Lookup: (virtual pc, physical page) → block.
    map: HashMap<(u32, u32), TbId>,
    /// Physical page → blocks whose code lives there.
    page_blocks: HashMap<u32, Vec<TbId>>,
    /// Indirect-branch target cache.
    pub ibtc: Ibtc,
    /// Arena size triggering a full flush (models a fixed-size
    /// translation cache overflowing).
    pub flush_threshold: usize,
    /// Number of full flushes performed.
    pub full_flushes: u64,
}

impl CodeCache {
    /// A cache with the given IBTC size.
    pub fn new(ibtc_bits: u8) -> Self {
        CodeCache {
            blocks: Vec::new(),
            map: HashMap::new(),
            page_blocks: HashMap::new(),
            ibtc: Ibtc::new(ibtc_bits),
            flush_threshold: 1 << 16,
            full_flushes: 0,
        }
    }

    /// Look up a live block by (pc, physical page).
    #[inline]
    pub fn lookup(&self, pc: u32, ppage: u32) -> Option<TbId> {
        self.map
            .get(&(pc, ppage))
            .copied()
            .filter(|&id| !self.blocks[id as usize].dead)
    }

    /// True if `ppage` holds any live translations. Used to set the
    /// write-protect flag on TLB fills.
    pub fn page_has_code(&self, ppage: u32) -> bool {
        self.page_blocks.get(&ppage).is_some_and(|v| !v.is_empty())
    }

    /// Insert a freshly translated block. Returns its id and whether the
    /// page *gained* its first translation (the caller must then flush
    /// data TLBs so stale unprotected entries disappear).
    pub fn insert(&mut self, tb: Tb) -> (TbId, bool) {
        let id = self.blocks.len() as TbId;
        let first_in_page = !self.page_has_code(tb.ppage);
        self.map.insert((tb.pc, tb.ppage), id);
        self.page_blocks.entry(tb.ppage).or_default().push(id);
        self.blocks.push(tb);
        (id, first_in_page)
    }

    /// True when the arena has outgrown the modelled translation cache.
    pub fn needs_flush(&self) -> bool {
        self.blocks.len() >= self.flush_threshold
    }

    /// Invalidate every block in a physical page (self-modifying code).
    /// Returns how many blocks died. All chains and the IBTC are
    /// conservatively dropped, as unlinking is global in real DBTs.
    pub fn invalidate_page(&mut self, ppage: u32) -> usize {
        let Some(ids) = self.page_blocks.remove(&ppage) else {
            return 0;
        };
        let n = ids.len();
        for id in ids {
            let tb = &mut self.blocks[id as usize];
            tb.dead = true;
            self.map.remove(&(tb.pc, tb.ppage));
        }
        self.unchain_all();
        n
    }

    /// Drop every chain link and IBTC entry (exception side-exit sync,
    /// and part of page invalidation).
    pub fn unchain_all(&mut self) {
        for tb in &mut self.blocks {
            tb.chain_taken = None;
            tb.chain_fall = None;
        }
        self.ibtc.clear();
    }

    /// Full code-cache flush.
    pub fn flush_all(&mut self) {
        self.blocks.clear();
        self.map.clear();
        self.page_blocks.clear();
        self.ibtc.clear();
        self.full_flushes += 1;
    }

    /// Number of live blocks (diagnostics).
    pub fn live_blocks(&self) -> usize {
        self.blocks.iter().filter(|t| !t.dead).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tb(pc: u32, ppage: u32) -> Tb {
        Tb {
            pc,
            ppage,
            steps: Rc::from(vec![].into_boxed_slice()),
            end_pc: pc + 4,
            taken_target: None,
            dead: false,
            chain_taken: None,
            chain_fall: None,
        }
    }

    #[test]
    fn insert_and_lookup() {
        let mut c = CodeCache::new(4);
        let (id, first) = c.insert(tb(0x8000, 8));
        assert!(first);
        assert_eq!(c.lookup(0x8000, 8), Some(id));
        assert_eq!(c.lookup(0x8000, 9), None, "different physical page");
        let (_, first2) = c.insert(tb(0x8010, 8));
        assert!(!first2, "page already had code");
    }

    #[test]
    fn page_invalidation_kills_blocks_and_chains() {
        let mut c = CodeCache::new(4);
        let (a, _) = c.insert(tb(0x8000, 8));
        let (b, _) = c.insert(tb(0x9000, 9));
        c.blocks[a as usize].chain_taken = Some(b);
        c.blocks[b as usize].chain_fall = Some(a);
        assert_eq!(c.invalidate_page(8), 1);
        assert_eq!(c.lookup(0x8000, 8), None);
        assert_eq!(c.lookup(0x9000, 9), Some(b), "other page untouched");
        assert!(c.blocks[b as usize].chain_fall.is_none(), "global unchain");
        assert!(!c.page_has_code(8));
        assert!(c.page_has_code(9));
    }

    #[test]
    fn ibtc_behaviour() {
        let mut i = Ibtc::new(4);
        assert_eq!(i.lookup(0x8000), None);
        i.insert(0x8000, 7);
        assert_eq!(i.lookup(0x8000), Some(7));
        // Aliasing entry evicts.
        i.insert(0x8000 + (1 << 6), 9);
        assert_eq!(i.lookup(0x8000), None);
        i.clear();
        assert_eq!(i.lookup(0x8000 + (1 << 6)), None);
    }

    #[test]
    fn disabled_ibtc() {
        let mut i = Ibtc::new(0);
        i.insert(0x8000, 7);
        assert_eq!(i.lookup(0x8000), None);
    }

    #[test]
    fn flush_all_resets() {
        let mut c = CodeCache::new(4);
        c.insert(tb(0x8000, 8));
        c.flush_all();
        assert_eq!(c.lookup(0x8000, 8), None);
        assert_eq!(c.live_blocks(), 0);
        assert_eq!(c.full_flushes, 1);
    }
}

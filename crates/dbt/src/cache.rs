//! Translation-block cache: one contiguous step arena plus the block
//! table, lookup map, per-page index for self-modifying-code
//! invalidation, chaining slots, and the indirect-branch target cache
//! (IBTC).
//!
//! Steps of every live block are stored back-to-back in a single slab
//! ([`CodeCache::steps`]); a [`Tb`] holds an `(offset, len)` range into
//! it. Dispatch is therefore a pure index into one cache-friendly
//! allocation instead of chasing a per-block `Rc<[TbStep]>`, and
//! steady-state translation re-uses the slab's capacity rather than
//! allocating per block. Invalidation tombstones a block (its range
//! simply goes dark in the slab) until [`CodeCache::flush_all`]
//! compacts everything back to empty — the same lifecycle as a real
//! DBT's fixed-size translation cache.

use std::collections::HashMap;

use simbench_core::ir::Op;

/// Index of a block in the arena.
pub type TbId = u32;

/// One executable micro-op within a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TbStep {
    /// The operation.
    pub op: Op,
    /// Address of the *next* instruction (exception return point).
    pub next_pc: u32,
    /// True on the first step of each guest instruction (drives
    /// instruction retirement accounting).
    pub insn_start: bool,
}

/// A translated basic block. Its executable steps live in the owning
/// [`CodeCache`]'s step arena at `steps_start .. steps_start + steps_len`.
#[derive(Debug, Clone, Copy)]
pub struct Tb {
    /// Guest virtual start address.
    pub pc: u32,
    /// Physical page the code was read from (part of the lookup key).
    pub ppage: u32,
    /// Offset of the block's first step in the step arena.
    pub steps_start: u32,
    /// Number of steps.
    pub steps_len: u32,
    /// Address following the last instruction (fallthrough target).
    pub end_pc: u32,
    /// Static target of the block-ending direct branch, if any (drives
    /// taken-edge chaining).
    pub taken_target: Option<u32>,
    /// Tombstone: invalidated, its arena range is dead until the next
    /// full flush.
    pub dead: bool,
    /// Chain slot for the taken direct-branch successor.
    pub chain_taken: Option<TbId>,
    /// Chain slot for the fallthrough successor.
    pub chain_fall: Option<TbId>,
}

/// Direct-mapped indirect-branch target cache mapping guest PC → block.
#[derive(Debug)]
pub struct Ibtc {
    slots: Vec<(u32, TbId)>,
    mask: u32,
}

impl Ibtc {
    /// An IBTC with `1 << bits` slots; `bits == 0` disables it.
    pub fn new(bits: u8) -> Self {
        let n = if bits == 0 { 0 } else { 1usize << bits };
        Ibtc {
            // lint:allow(hot-path): one-time constructor allocation
            slots: vec![(u32::MAX, 0); n],
            mask: n.saturating_sub(1) as u32,
        }
    }

    /// Predicted block for a target PC.
    #[inline]
    pub fn lookup(&self, pc: u32) -> Option<TbId> {
        if self.slots.is_empty() {
            return None;
        }
        let slot = &self.slots[(pc >> 2 & self.mask) as usize];
        (slot.0 == pc).then_some(slot.1)
    }

    /// Record a resolved target.
    #[inline]
    pub fn insert(&mut self, pc: u32, id: TbId) {
        if self.slots.is_empty() {
            return;
        }
        let i = (pc >> 2 & self.mask) as usize;
        self.slots[i] = (pc, id);
    }

    /// Drop all predictions.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            s.0 = u32::MAX;
        }
    }
}

/// The code cache.
#[derive(Debug)]
pub struct CodeCache {
    /// Block table (tombstoned blocks stay until a full flush).
    pub blocks: Vec<Tb>,
    /// The step arena: every live block's steps, back to back. Ranges
    /// of tombstoned blocks stay allocated (dark) until `flush_all`.
    pub steps: Vec<TbStep>,
    /// Lookup: (virtual pc, physical page) → block.
    map: HashMap<(u32, u32), TbId>,
    /// Physical page → blocks whose code lives there. Entries are
    /// cleared in place (not removed) so their capacity survives
    /// invalidation and flushes — steady-state retranslation after
    /// warm-up touches no allocator.
    page_blocks: HashMap<u32, Vec<TbId>>,
    /// Indirect-branch target cache.
    pub ibtc: Ibtc,
    /// Arena size triggering a full flush (models a fixed-size
    /// translation cache overflowing).
    pub flush_threshold: usize,
    /// Number of full flushes performed.
    pub full_flushes: u64,
}

impl CodeCache {
    /// A cache with the given IBTC size.
    pub fn new(ibtc_bits: u8) -> Self {
        CodeCache {
            blocks: Vec::new(),
            steps: Vec::new(),
            map: HashMap::new(),
            page_blocks: HashMap::new(),
            ibtc: Ibtc::new(ibtc_bits),
            flush_threshold: 1 << 16,
            full_flushes: 0,
        }
    }

    /// Look up a live block by (pc, physical page).
    #[inline]
    pub fn lookup(&self, pc: u32, ppage: u32) -> Option<TbId> {
        self.map
            .get(&(pc, ppage))
            .copied()
            .filter(|&id| !self.blocks[id as usize].dead)
    }

    /// The executable steps of a block.
    #[inline]
    pub fn steps_of(&self, id: TbId) -> &[TbStep] {
        let tb = &self.blocks[id as usize];
        &self.steps[tb.steps_start as usize..(tb.steps_start + tb.steps_len) as usize]
    }

    /// True if `ppage` holds any live translations. Used to set the
    /// write-protect flag on TLB fills.
    pub fn page_has_code(&self, ppage: u32) -> bool {
        self.page_blocks.get(&ppage).is_some_and(|v| !v.is_empty())
    }

    /// Insert a freshly translated block, copying its steps into the
    /// arena. Returns its id and whether the page *gained* its first
    /// translation (the caller must then flush data TLBs so stale
    /// unprotected entries disappear).
    pub fn insert(
        &mut self,
        pc: u32,
        ppage: u32,
        end_pc: u32,
        taken_target: Option<u32>,
        steps: &[TbStep],
    ) -> (TbId, bool) {
        let id = self.blocks.len() as TbId;
        let first_in_page = !self.page_has_code(ppage);
        let steps_start = self.steps.len() as u32;
        let cap_before = self.steps.capacity();
        self.steps.extend_from_slice(steps);
        if self.steps.capacity() != cap_before {
            static OBS_ARENA_GROWTHS: simbench_obs::Counter =
                simbench_obs::Counter::new("dbt.arena_growths");
            OBS_ARENA_GROWTHS.add(1);
            simbench_obs::event!("dbt.arena_growth");
        }
        self.map.insert((pc, ppage), id);
        self.page_blocks.entry(ppage).or_default().push(id);
        self.blocks.push(Tb {
            pc,
            ppage,
            steps_start,
            steps_len: steps.len() as u32,
            end_pc,
            taken_target,
            dead: false,
            chain_taken: None,
            chain_fall: None,
        });
        (id, first_in_page)
    }

    /// True when the arena has outgrown the modelled translation cache.
    pub fn needs_flush(&self) -> bool {
        self.blocks.len() >= self.flush_threshold
    }

    /// Invalidate every block in a physical page (self-modifying code).
    /// Returns how many blocks died. Their step ranges stay dark in the
    /// arena until the next full flush. All chains and the IBTC are
    /// conservatively dropped, as unlinking is global in real DBTs.
    pub fn invalidate_page(&mut self, ppage: u32) -> usize {
        let Some(ids) = self.page_blocks.get_mut(&ppage) else {
            return 0;
        };
        let n = ids.len();
        for &id in ids.iter() {
            let tb = &mut self.blocks[id as usize];
            tb.dead = true;
            self.map.remove(&(tb.pc, tb.ppage));
        }
        ids.clear();
        self.unchain_all();
        static OBS_TOMBSTONES: simbench_obs::Counter =
            simbench_obs::Counter::new("dbt.tombstoned_blocks");
        OBS_TOMBSTONES.add(n as u64);
        simbench_obs::event!("dbt.invalidate_page");
        n
    }

    /// Drop every chain link and IBTC entry (exception side-exit sync,
    /// and part of page invalidation).
    pub fn unchain_all(&mut self) {
        for tb in &mut self.blocks {
            tb.chain_taken = None;
            tb.chain_fall = None;
        }
        self.ibtc.clear();
    }

    /// Full code-cache flush: the arena compacts back to empty. Every
    /// container keeps its capacity, so post-flush retranslation is
    /// allocation-free once the caches have reached steady-state size.
    pub fn flush_all(&mut self) {
        self.blocks.clear();
        self.steps.clear();
        self.map.clear();
        for ids in self.page_blocks.values_mut() {
            ids.clear();
        }
        self.ibtc.clear();
        self.full_flushes += 1;
        static OBS_FULL_FLUSHES: simbench_obs::Counter =
            simbench_obs::Counter::new("dbt.full_flushes");
        OBS_FULL_FLUSHES.add(1);
        simbench_obs::event!("dbt.flush_all");
    }

    /// Number of live blocks (diagnostics).
    pub fn live_blocks(&self) -> usize {
        self.blocks.iter().filter(|t| !t.dead).count()
    }

    /// Steps currently held by the arena, dead ranges included
    /// (diagnostics).
    pub fn arena_steps(&self) -> usize {
        self.steps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn insert(c: &mut CodeCache, pc: u32, ppage: u32) -> (TbId, bool) {
        let steps = [TbStep {
            op: Op::Nop,
            next_pc: pc + 4,
            insn_start: true,
        }];
        c.insert(pc, ppage, pc + 4, None, &steps)
    }

    #[test]
    fn insert_and_lookup() {
        let mut c = CodeCache::new(4);
        let (id, first) = insert(&mut c, 0x8000, 8);
        assert!(first);
        assert_eq!(c.lookup(0x8000, 8), Some(id));
        assert_eq!(c.lookup(0x8000, 9), None, "different physical page");
        let (_, first2) = insert(&mut c, 0x8010, 8);
        assert!(!first2, "page already had code");
    }

    #[test]
    fn steps_live_in_one_arena() {
        let mut c = CodeCache::new(4);
        let (a, _) = insert(&mut c, 0x8000, 8);
        let (b, _) = insert(&mut c, 0x9000, 9);
        assert_eq!(c.arena_steps(), 2);
        assert_eq!(c.steps_of(a).len(), 1);
        assert_eq!(c.steps_of(b)[0].next_pc, 0x9004);
        let tb = c.blocks[b as usize];
        assert_eq!((tb.steps_start, tb.steps_len), (1, 1));
    }

    #[test]
    fn page_invalidation_kills_blocks_and_chains() {
        let mut c = CodeCache::new(4);
        let (a, _) = insert(&mut c, 0x8000, 8);
        let (b, _) = insert(&mut c, 0x9000, 9);
        c.blocks[a as usize].chain_taken = Some(b);
        c.blocks[b as usize].chain_fall = Some(a);
        assert_eq!(c.invalidate_page(8), 1);
        assert_eq!(c.lookup(0x8000, 8), None);
        assert_eq!(c.lookup(0x9000, 9), Some(b), "other page untouched");
        assert!(c.blocks[b as usize].chain_fall.is_none(), "global unchain");
        assert!(!c.page_has_code(8));
        assert!(c.page_has_code(9));
        // The dead block's range stays dark in the arena until a flush.
        assert_eq!(c.arena_steps(), 2);
        c.flush_all();
        assert_eq!(c.arena_steps(), 0, "flush compacts the arena");
    }

    #[test]
    fn ibtc_behaviour() {
        let mut i = Ibtc::new(4);
        assert_eq!(i.lookup(0x8000), None);
        i.insert(0x8000, 7);
        assert_eq!(i.lookup(0x8000), Some(7));
        // Aliasing entry evicts.
        i.insert(0x8000 + (1 << 6), 9);
        assert_eq!(i.lookup(0x8000), None);
        i.clear();
        assert_eq!(i.lookup(0x8000 + (1 << 6)), None);
    }

    #[test]
    fn disabled_ibtc() {
        let mut i = Ibtc::new(0);
        i.insert(0x8000, 7);
        assert_eq!(i.lookup(0x8000), None);
    }

    #[test]
    fn flush_all_resets() {
        let mut c = CodeCache::new(4);
        insert(&mut c, 0x8000, 8);
        c.flush_all();
        assert_eq!(c.lookup(0x8000, 8), None);
        assert_eq!(c.live_blocks(), 0);
        assert_eq!(c.full_flushes, 1);
        assert!(!c.page_has_code(8), "cleared-in-place page index is empty");
    }
}

//! Static event-profile prediction.
//!
//! Predicts the exact [`Counters`] vector a correct
//! interpreter-structured engine must retire for a guest image, without
//! consulting any engine. The predictor is a second, independent
//! implementation of the reference execution semantics: it shares the
//! per-op IR semantics (`step_op`) with every engine — that sharing is
//! the repo's front-end design — but owns its fetch path, translation
//! caching, interrupt delivery, trap dispatch and event accounting.
//! When `analyze --check` compares a prediction against a real
//! [`simbench_interp::Interp`] run, two separately-written engine loops
//! must agree counter-for-counter, which is an N-version check on the
//! reference semantics itself.
//!
//! The prediction is *exact* whenever the program is deterministic and
//! bounded. The one nondeterministic input on the platform is the
//! host-clock timer device; the predictor runs the guest on a bus
//! wrapper that watches for loads from the timer page and abstains from
//! predicting (rather than predicting wrongly) if one occurs. Unbounded
//! programs exhaust the instruction-fuel budget and abstain likewise —
//! abstention is a statement about the input class, not a violation.
//!
//! Predicted counters are the reference event profile: engines with
//! different memory-access structures legitimately differ on the
//! `tlb_*` rows (the paper's Fig 4 "Memory Access" axis), so those rows
//! bind only interpreter-structured engines.

use simbench_core::bus::{Bus, BusEvent};
use simbench_core::cpu::{CpuState, Flags};
use simbench_core::events::Counters;
use simbench_core::exec::{step_op, ExecCtx, OpOutcome, Trap};
use simbench_core::fault::{AccessKind, CopFault, ExcInfo, ExceptionKind, FaultKind, MemFault};
use simbench_core::image::GuestImage;
use simbench_core::ir::{Decoded, InsnClass, MemSize, Op};
use simbench_core::isa::{CopEffect, Isa};
use simbench_core::machine::Machine;
use simbench_core::page_of;
use simbench_core::tlb::SingleEntryCache;
use simbench_platform::{Platform, TIMER_BASE};

/// Why the predictor declined to claim an exact profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbstainCause {
    /// The program read the host-clock timer device — the platform's
    /// one nondeterministic input — so later behaviour is not a
    /// function of the image alone.
    TimerRead,
    /// The instruction-fuel budget ran out before `halt`.
    FuelExhausted {
        /// Instructions retired when the budget ran out.
        at: u64,
    },
}

impl std::fmt::Display for AbstainCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbstainCause::TimerRead => {
                f.write_str("program reads the host-clock timer (nondeterministic input)")
            }
            AbstainCause::FuelExhausted { at } => write!(
                f,
                "fuel exhausted after {at} instructions (unbounded or under-fueled region)"
            ),
        }
    }
}

/// Outcome of a static event-profile prediction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Prediction {
    /// The program is deterministic and bounded: a correct
    /// interpreter-structured engine retires exactly these counters and
    /// halts.
    Exact {
        /// The predicted event profile.
        counters: Counters,
    },
    /// No exact prediction is claimed for this input.
    Abstained {
        /// Why the predictor abstained.
        cause: AbstainCause,
        /// Counters accumulated up to the abstention point. For
        /// [`AbstainCause::FuelExhausted`] this is still exact for the
        /// executed prefix; for timer reads it is not a claim at all.
        partial: Counters,
    },
}

impl Prediction {
    /// `true` for [`Prediction::Exact`].
    pub fn is_exact(&self) -> bool {
        matches!(self, Prediction::Exact { .. })
    }

    /// The counters carried by either variant.
    pub fn counters(&self) -> &Counters {
        match self {
            Prediction::Exact { counters } => counters,
            Prediction::Abstained { partial, .. } => partial,
        }
    }
}

/// Bus wrapper that detects reads from the host-clock timer page — the
/// single nondeterministic device input — so the predictor can abstain
/// instead of predicting an unpredictable value's consequences.
struct WatchedBus {
    inner: Platform,
    timer_read: bool,
}

impl WatchedBus {
    fn new() -> Self {
        WatchedBus {
            inner: Platform::new(),
            timer_read: false,
        }
    }
}

impl Bus for WatchedBus {
    fn ram(&self) -> &[u8] {
        self.inner.ram()
    }
    fn ram_mut(&mut self) -> &mut [u8] {
        self.inner.ram_mut()
    }
    fn ram_size(&self) -> u32 {
        self.inner.ram_size()
    }
    fn is_mmio(&self, pa: u32) -> bool {
        self.inner.is_mmio(pa)
    }
    fn read(&mut self, pa: u32, size: MemSize) -> Result<u32, MemFault> {
        if pa & !0xFFF == TIMER_BASE {
            self.timer_read = true;
        }
        self.inner.read(pa, size)
    }
    fn write(&mut self, pa: u32, val: u32, size: MemSize) -> Result<Option<BusEvent>, MemFault> {
        self.inner.write(pa, val, size)
    }
    fn irq_pending(&self) -> bool {
        self.inner.irq_pending()
    }
}

/// The predictor's execution context: machine borrows plus its own
/// single-entry translation caches and counter accumulator.
struct PredictCtx<'a, I: Isa> {
    cpu: &'a mut CpuState,
    sys: &'a mut I::Sys,
    bus: &'a mut WatchedBus,
    dcache: &'a mut SingleEntryCache,
    icache: &'a mut SingleEntryCache,
    counters: &'a mut Counters,
}

impl<I: Isa> PredictCtx<'_, I> {
    fn translate_data(
        &mut self,
        va: u32,
        size: MemSize,
        access: AccessKind,
        nonpriv: bool,
    ) -> Result<u32, MemFault> {
        if !size.aligned(va) {
            return Err(MemFault {
                addr: va,
                access,
                kind: FaultKind::Unaligned,
            });
        }
        if !I::mmu_enabled(self.sys) {
            return Ok(va);
        }
        let vpage = page_of(va);
        let entry = match self.dcache.lookup(vpage) {
            Some(e) => {
                self.counters.tlb_hits += 1;
                e
            }
            None => {
                self.counters.tlb_misses += 1;
                let e = I::walk(self.sys, self.bus, va).map_err(|mut f| {
                    f.access = access;
                    f
                })?;
                self.dcache.insert(e);
                e
            }
        };
        entry.check(va, access, self.cpu.level.is_kernel(), nonpriv)
    }

    fn apply_cop_effect(&mut self, effect: CopEffect) {
        match effect {
            CopEffect::None => {}
            CopEffect::TlbInvPage(va) => {
                self.counters.tlb_invalidate_page += 1;
                let vpage = page_of(va);
                self.dcache.invalidate_page(vpage);
                self.icache.invalidate_page(vpage);
            }
            CopEffect::TlbFlush => {
                self.counters.tlb_flushes += 1;
                self.dcache.flush();
                self.icache.flush();
            }
            CopEffect::ContextChanged => {
                self.dcache.flush();
                self.icache.flush();
            }
        }
    }
}

impl<I: Isa> ExecCtx for PredictCtx<'_, I> {
    fn reg(&self, r: u8) -> u32 {
        self.cpu.regs[r as usize]
    }
    fn set_reg(&mut self, r: u8, v: u32) {
        self.cpu.regs[r as usize] = v;
    }
    fn flags(&self) -> Flags {
        self.cpu.flags
    }
    fn set_flags(&mut self, f: Flags) {
        self.cpu.flags = f;
    }
    fn privileged(&self) -> bool {
        self.cpu.level.is_kernel()
    }

    fn read(&mut self, va: u32, size: MemSize, nonpriv: bool) -> Result<u32, MemFault> {
        self.counters.mem_reads += 1;
        if nonpriv {
            self.counters.nonpriv_accesses += 1;
        }
        let pa = self.translate_data(va, size, AccessKind::Read, nonpriv)?;
        if self.bus.is_mmio(pa) {
            self.counters.mmio_accesses += 1;
        }
        self.bus.read(pa, size).map_err(|mut f| {
            f.addr = va;
            f
        })
    }

    fn write(&mut self, va: u32, val: u32, size: MemSize, nonpriv: bool) -> Result<(), MemFault> {
        self.counters.mem_writes += 1;
        if nonpriv {
            self.counters.nonpriv_accesses += 1;
        }
        let pa = self.translate_data(va, size, AccessKind::Write, nonpriv)?;
        if self.bus.is_mmio(pa) {
            self.counters.mmio_accesses += 1;
        }
        // Phase marks only shape per-phase reporting, never totals; the
        // prediction covers the whole run, so the event is dropped.
        match self.bus.write(pa, val, size) {
            Ok(_) => Ok(()),
            Err(mut f) => {
                f.addr = va;
                Err(f)
            }
        }
    }

    fn cop_read(&mut self, cp: u8, reg: u8) -> Result<u32, CopFault> {
        self.counters.coproc_accesses += 1;
        I::cop_read(self.cpu, self.sys, cp, reg)
    }

    fn cop_write(&mut self, cp: u8, reg: u8, val: u32) -> Result<(), CopFault> {
        self.counters.coproc_accesses += 1;
        let effect = I::cop_write(self.cpu, self.sys, cp, reg, val)?;
        self.apply_cop_effect(effect);
        Ok(())
    }
}

/// Translate-for-execute and read raw instruction bytes at `pc`,
/// charging TLB probes to `counters`. `Err` is the prefetch abort.
fn fetch_insn<I: Isa>(
    cpu: &CpuState,
    sys: &mut I::Sys,
    bus: &mut WatchedBus,
    icache: &mut SingleEntryCache,
    counters: &mut Counters,
    pc: u32,
) -> Result<Decoded, MemFault> {
    let mut bytes = [0u8; 8];
    let mut have = 0usize;
    let want = I::MAX_INSN_BYTES;
    let mut va = pc;
    while have < want {
        let pa = if !I::mmu_enabled(sys) {
            va
        } else {
            let vpage = page_of(va);
            let entry = match icache.lookup(vpage) {
                Some(e) => {
                    counters.tlb_hits += 1;
                    e
                }
                None => {
                    counters.tlb_misses += 1;
                    match I::walk(sys, bus, va) {
                        Ok(e) => {
                            icache.insert(e);
                            e
                        }
                        Err(mut f) => {
                            f.access = AccessKind::Execute;
                            // A truncated tail only aborts if the decoder
                            // actually needs the missing bytes.
                            if have > 0 {
                                break;
                            }
                            return Err(f);
                        }
                    }
                }
            };
            match entry.check(va, AccessKind::Execute, cpu.level.is_kernel(), false) {
                Ok(pa) => pa,
                Err(f) => {
                    if have > 0 {
                        break;
                    }
                    return Err(f);
                }
            }
        };
        let page_left = (0x1000 - (va & 0xFFF)) as usize;
        let n = page_left.min(want - have);
        let ram = bus.ram();
        if (pa as usize) + n <= ram.len() {
            bytes[have..have + n].copy_from_slice(&ram[pa as usize..pa as usize + n]);
        } else {
            if have == 0 {
                return Err(MemFault {
                    addr: pc,
                    access: AccessKind::Execute,
                    kind: FaultKind::BusError,
                });
            }
            break;
        }
        have += n;
        va = va.wrapping_add(n as u32);
    }
    Ok(match I::decode(&bytes[..have], pc) {
        Ok(d) => d,
        // Undecodable bytes raise Undef through an explicit op, length
        // nominal — identical to the engines' convention.
        Err(_) => Decoded::new(I::MAX_INSN_BYTES as u8, [Op::Udf], InsnClass::System),
    })
}

/// Predict the event profile of `image` run from reset to halt, with a
/// budget of `fuel` retired instructions.
pub fn predict<I: Isa>(image: &GuestImage, fuel: u64) -> Prediction {
    let mut m = Machine::<I, WatchedBus>::boot(image, WatchedBus::new());
    let mut counters = Counters::default();
    let mut icache = SingleEntryCache::new();
    let mut dcache = SingleEntryCache::new();

    let halted = loop {
        if counters.instructions >= fuel {
            break false;
        }

        // Interrupt delivery at every instruction boundary: INTC state
        // is a deterministic function of guest stores, so delivery
        // points are statically determined at this granularity.
        if m.cpu.irq_enabled && m.bus.irq_pending() {
            counters.irqs_delivered += 1;
            let resume = m.cpu.pc;
            let vec = I::enter_exception(
                &mut m.cpu,
                &mut m.sys,
                ExceptionKind::Irq,
                ExcInfo::default(),
                resume,
            );
            m.cpu.pc = vec;
            continue;
        }

        let pc = m.cpu.pc;
        let decoded = match fetch_insn::<I>(
            &m.cpu,
            &mut m.sys,
            &mut m.bus,
            &mut icache,
            &mut counters,
            pc,
        ) {
            Ok(d) => d,
            Err(f) => {
                counters.insn_faults += 1;
                let vec = I::enter_exception(
                    &mut m.cpu,
                    &mut m.sys,
                    ExceptionKind::PrefetchAbort,
                    ExcInfo::from_fault(f),
                    pc,
                );
                m.cpu.pc = vec;
                continue;
            }
        };

        counters.instructions += 1;
        let next_pc = pc.wrapping_add(decoded.len as u32);
        let mut ctx = PredictCtx::<I> {
            cpu: &mut m.cpu,
            sys: &mut m.sys,
            bus: &mut m.bus,
            dcache: &mut dcache,
            icache: &mut icache,
            counters: &mut counters,
        };

        let mut new_pc = next_pc;
        let mut trap: Option<Trap> = None;
        let mut halt = false;
        for op in &decoded.ops {
            ctx.counters.uops += 1;
            match step_op(&mut ctx, op) {
                OpOutcome::Next => {}
                OpOutcome::Jump { target, flavor } => {
                    simbench_interp::count_branch(ctx.counters, pc, target, flavor);
                    new_pc = target;
                    break;
                }
                OpOutcome::Trap(t) => {
                    trap = Some(t);
                    break;
                }
                OpOutcome::Halt => {
                    halt = true;
                    break;
                }
            }
        }
        if halt {
            break true;
        }

        match trap {
            None => m.cpu.pc = new_pc,
            Some(Trap::Eret) => m.cpu.pc = I::leave_exception(&mut m.cpu, &mut m.sys),
            Some(Trap::Syscall(n)) => {
                counters.syscalls += 1;
                let vec = I::enter_exception(
                    &mut m.cpu,
                    &mut m.sys,
                    ExceptionKind::Syscall,
                    ExcInfo::syscall(n),
                    next_pc,
                );
                m.cpu.pc = vec;
            }
            Some(Trap::Undef) => {
                counters.undef_insns += 1;
                let vec = I::enter_exception(
                    &mut m.cpu,
                    &mut m.sys,
                    ExceptionKind::Undef,
                    ExcInfo::default(),
                    next_pc,
                );
                m.cpu.pc = vec;
            }
            Some(Trap::DataFault(f)) => {
                counters.data_faults += 1;
                let vec = I::enter_exception(
                    &mut m.cpu,
                    &mut m.sys,
                    ExceptionKind::DataAbort,
                    ExcInfo::from_fault(f),
                    next_pc,
                );
                m.cpu.pc = vec;
            }
        }
    };

    if m.bus.timer_read {
        return Prediction::Abstained {
            cause: AbstainCause::TimerRead,
            partial: counters,
        };
    }
    if !halted {
        return Prediction::Abstained {
            cause: AbstainCause::FuelExhausted {
                at: counters.instructions,
            },
            partial: counters,
        };
    }
    Prediction::Exact { counters }
}

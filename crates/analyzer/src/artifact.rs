//! The `simbench-analysis/v1` artifact.
//!
//! A versioned JSON serialization of a batch of subject analyses, hand
//! rolled in the same style as the campaign result files (and parseable
//! by [`simbench_campaign::json::parse`], which the round-trip test
//! exercises). The schema is part of the CI contract: the analyze-smoke
//! job uploads this file, and downstream tooling (the native-DBT
//! promotion oracle) keys on `schema` before trusting field layout.
//!
//! Top-level shape:
//!
//! ```text
//! {
//!   "schema": "simbench-analysis/v1",
//!   "subjects": [
//!     {
//!       "subject": "armlet/suite:System Call",
//!       "guest": "armlet",
//!       "image": {"entry": .., "size": .., "limit": ..},
//!       "summary": {"blocks": .., "insns": .., "edges": .., "loop_headers": ..},
//!       "violations": ["..."],
//!       "blocks": [
//!         {"start": .., "end": .., "insns": .., "digest": "0x..",
//!          "class": "native-safe", "loop_header": false, "reasons": []}
//!       ],
//!       "prediction": {"status": "exact", "exit": "halted",
//!                      "counters": {"instructions": .., ...}},
//!       "check": {"matched": true, "detail": []}
//!     }
//!   ]
//! }
//! ```
//!
//! `prediction.status` is `"exact"` or `"abstained"`; abstentions add a
//! `"reason"` string and their counters are the partial profile. Block
//! digests are hex strings because u64 does not round-trip through the
//! f64 numbers of minimal JSON parsers.

use std::fmt::Write as _;

use simbench_campaign::json;

use crate::predict::Prediction;
use crate::SubjectAnalysis;

/// Schema identifier written to (and expected from) every artifact.
pub const SCHEMA: &str = "simbench-analysis/v1";

/// Serialize a batch of analyses as a `simbench-analysis/v1` document.
pub fn to_json(subjects: &[SubjectAnalysis]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": {},", json::quote(SCHEMA));
    out.push_str("  \"subjects\": [\n");
    for (i, s) in subjects.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"subject\": {},", json::quote(&s.subject));
        let _ = writeln!(out, "      \"guest\": {},", json::quote(s.guest));
        let _ = writeln!(
            out,
            "      \"image\": {{\"entry\": {}, \"size\": {}, \"limit\": {}}},",
            s.entry, s.image_size, s.image_limit
        );
        let _ = writeln!(
            out,
            "      \"summary\": {{\"blocks\": {}, \"insns\": {}, \"edges\": {}, \"loop_headers\": {}}},",
            s.blocks.len(),
            s.insns,
            s.edges,
            s.loop_headers
        );
        let _ = writeln!(
            out,
            "      \"violations\": [{}],",
            s.violations
                .iter()
                .map(|v| json::quote(v))
                .collect::<Vec<_>>()
                .join(", ")
        );
        out.push_str("      \"blocks\": [\n");
        for (j, b) in s.blocks.iter().enumerate() {
            let _ = write!(
                out,
                "        {{\"start\": {}, \"end\": {}, \"insns\": {}, \"digest\": {}, \"class\": {}, \"loop_header\": {}, \"reasons\": [{}]}}",
                b.start,
                b.end,
                b.insns,
                json::quote(&format!("{:#018x}", b.digest)),
                json::quote(b.class.as_str()),
                b.loop_header,
                b.reasons
                    .iter()
                    .map(|r| json::quote(r))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            out.push_str(if j + 1 < s.blocks.len() { ",\n" } else { "\n" });
        }
        out.push_str("      ],\n");
        match &s.prediction {
            Prediction::Exact { counters } => {
                out.push_str("      \"prediction\": {\"status\": \"exact\", \"exit\": \"halted\", \"counters\": {");
                push_counters(&mut out, counters);
                out.push_str("}}");
            }
            Prediction::Abstained { cause, partial } => {
                let _ = write!(
                    out,
                    "      \"prediction\": {{\"status\": \"abstained\", \"reason\": {}, \"counters\": {{",
                    json::quote(&cause.to_string())
                );
                push_counters(&mut out, partial);
                out.push_str("}}");
            }
        }
        if let Some(check) = &s.check {
            let _ = write!(
                out,
                ",\n      \"check\": {{\"matched\": {}, \"detail\": [{}]}}",
                check.matched,
                check
                    .detail
                    .iter()
                    .map(|d| json::quote(d))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        out.push_str("\n    }");
        out.push_str(if i + 1 < subjects.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn push_counters(out: &mut String, counters: &simbench_core::Counters) {
    let rows = counters.rows();
    for (i, (name, v)) in rows.iter().enumerate() {
        let _ = write!(out, "{}: {}", json::quote(name), v);
        if i + 1 < rows.len() {
            out.push_str(", ");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze_workload, AnalyzeOpts};
    use simbench_campaign::{Guest, Workload};
    use simbench_suite::Benchmark;

    #[test]
    fn artifact_round_trips_through_the_json_parser() {
        let opts = AnalyzeOpts {
            fuel: 5_000_000,
            check: true,
        };
        let a = analyze_workload(
            Guest::Armlet,
            Workload::Suite(Benchmark::Syscall),
            20_000,
            &opts,
        )
        .expect("syscall exists on armlet");
        let text = to_json(std::slice::from_ref(&a));
        let doc = json::parse(&text).expect("artifact must be valid JSON");

        assert_eq!(doc.get("schema").and_then(|v| v.as_str()), Some(SCHEMA));
        let subjects = doc.get("subjects").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(subjects.len(), 1);
        let s = &subjects[0];
        assert_eq!(s.get("guest").and_then(|v| v.as_str()), Some("armlet"));
        let blocks = s.get("blocks").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(blocks.len(), a.blocks.len());
        for b in blocks {
            let class = b.get("class").and_then(|v| v.as_str()).unwrap();
            assert!(
                ["native-safe", "step-arena-only", "interp-only"].contains(&class),
                "unknown class {class}"
            );
        }
        let pred = s.get("prediction").unwrap();
        assert_eq!(pred.get("status").and_then(|v| v.as_str()), Some("exact"));
        let insns = pred
            .get("counters")
            .and_then(|c| c.get("instructions"))
            .and_then(|v| v.as_u64())
            .unwrap();
        assert!(insns > 0);
        let check = s.get("check").unwrap();
        assert_eq!(
            check.get("matched").and_then(|v| v.as_str()),
            None,
            "matched is a bare bool, not a string"
        );
        assert!(text.contains("\"matched\": true"), "{text}");
    }
}

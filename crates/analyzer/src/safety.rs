//! DBT-promotion safety classification.
//!
//! Labels every recovered basic block with the strongest execution tier
//! it can be promoted to without changing observable behaviour. The
//! classes mirror the engines' actual mechanisms: `NativeSafe` blocks
//! could run as region-translated native code with no per-instruction
//! checks, `StepArenaOnly` blocks need the step-arena DBT's
//! per-block invalidation and per-access checks, and `InterpOnly`
//! blocks take exception-class exits that force a return to the
//! interpreter-structured path.
//!
//! The classification is conservative: it must never claim a stronger
//! tier than is sound, but may under-promote. Its evidence is a
//! flow-insensitive scan of each block's ops plus an interprocedural
//! constant propagation over the CFG that resolves store/load addresses
//! where possible — boot zeroes every register ([`Machine::boot`]), so
//! the entry block starts from fully-known state and address constants
//! built by `movw`/`movt` chains stay known until clobbered.
//!
//! Addresses are virtual. Boot code runs MMU-off with an identity
//! mapping, which is the regime where promotion decisions are made; a
//! block that remaps itself writes a coprocessor register first and is
//! `InterpOnly` by that evidence alone.
//!
//! [`Machine::boot`]: simbench_core::machine::Machine::boot

use simbench_core::alu;
use simbench_core::cfg::{Block, Cfg};
use simbench_core::cpu::Flags;
use simbench_core::ir::{AluOp, LinkKind, Op, Operand, RetKind};
use simbench_platform::{DEVICE_BASE, INTC_BASE};

/// Strongest execution tier a block may be promoted to.
///
/// Ordered by restriction: `NativeSafe < StepArenaOnly < InterpOnly`,
/// so `max` accumulates evidence toward the weaker tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SafetyClass {
    /// No MMIO, no SMC exposure, no indirect control flow, no
    /// exception-class ops: eligible for region-native translation.
    NativeSafe,
    /// Needs the step-arena DBT's per-block digest checks or runtime
    /// address checks (indirect exits, unresolved or device-page
    /// accesses, SMC involvement).
    StepArenaOnly,
    /// Takes exception-class exits (svc/udf/eret/halt) or touches
    /// coprocessor state: must run on the interpreter-structured path.
    InterpOnly,
}

impl SafetyClass {
    /// Stable identifier used in the analysis artifact.
    pub fn as_str(self) -> &'static str {
        match self {
            SafetyClass::NativeSafe => "native-safe",
            SafetyClass::StepArenaOnly => "step-arena-only",
            SafetyClass::InterpOnly => "interp-only",
        }
    }
}

/// Classification of one block, with the evidence that produced it.
#[derive(Debug, Clone)]
pub struct BlockSafety {
    /// The assigned class.
    pub class: SafetyClass,
    /// Why the block is not (more) promotable; empty for `NativeSafe`.
    pub reasons: Vec<String>,
}

const NREGS: usize = 16;

/// Per-register constant lattice: `Some(v)` = proven value, `None` = ⊤.
type RegState = [Option<u32>; NREGS];

fn join(a: &RegState, b: &RegState) -> RegState {
    let mut out = [None; NREGS];
    for (o, (x, y)) in out.iter_mut().zip(a.iter().zip(b.iter())) {
        if x == y {
            *o = *x;
        }
    }
    out
}

fn operand_value(state: &RegState, src: Operand) -> Option<u32> {
    match src {
        Operand::Reg(r) => state[r as usize],
        Operand::Imm(i) => Some(i),
    }
}

/// Apply one op's register effects to the constant state.
fn transfer_op(state: &mut RegState, op: &Op) {
    match *op {
        Op::Alu {
            op, rd, rn, src, ..
        } => {
            let b = operand_value(state, src);
            state[rd as usize] = match op {
                // Flags are not tracked, so carry-consuming forms are ⊤.
                AluOp::Adc | AluOp::Sbc => None,
                // Mov/Mvn ignore rn; an unknown rn must not poison them.
                AluOp::Mov | AluOp::Mvn => b.map(|b| alu::eval(op, 0, b, Flags::default()).value),
                _ => match (state[rn as usize], b) {
                    (Some(a), Some(b)) => Some(alu::eval(op, a, b, Flags::default()).value),
                    _ => None,
                },
            };
        }
        Op::Load { rd, .. } => state[rd as usize] = None,
        Op::CopRead { rd, .. } => state[rd as usize] = None,
        Op::Call { ret, link, .. } | Op::CallReg { ret, link, .. } => match link {
            LinkKind::Register(lr) => state[lr as usize] = Some(ret),
            LinkKind::Push(sp) => {
                state[sp as usize] = state[sp as usize].map(|v| v.wrapping_sub(4))
            }
        },
        Op::Ret(RetKind::Pop(sp)) => {
            state[sp as usize] = state[sp as usize].map(|v| v.wrapping_add(4));
        }
        // No register effects.
        Op::Cmp { .. }
        | Op::Store { .. }
        | Op::Branch { .. }
        | Op::BranchCond { .. }
        | Op::BranchReg { .. }
        | Op::Ret(RetKind::Register(_))
        | Op::Svc(_)
        | Op::Udf
        | Op::Eret
        | Op::CopWrite { .. }
        | Op::Halt
        | Op::Nop => {}
    }
}

fn block_out_state(cfg: &Cfg, b: &Block, in_state: &RegState) -> RegState {
    let mut state = *in_state;
    for (_, d) in cfg.block_insns(b) {
        for op in &d.ops {
            transfer_op(&mut state, op);
        }
    }
    state
}

/// True when the continuation successor of this terminator resumes
/// after foreign code ran (callee, trap handler): its register state
/// must be assumed clobbered.
fn continuation_clobbers(b: &Block) -> bool {
    use simbench_core::cfg::Terminator;
    matches!(
        b.terminator,
        Terminator::Call | Terminator::IndirectCall | Terminator::Trap
    )
}

/// Classify every block of `cfg`. `entry` is the reset entry point —
/// the one root whose initial register state is architecturally known
/// (all zero). `unknown_roots` are blocks control can reach with
/// arbitrary register state (the exception vectors): their in-state is
/// pinned fully unknown, even if direct edges also reach them. Returns
/// one [`BlockSafety`] per [`Cfg::blocks`] entry, same order.
pub fn classify(cfg: &Cfg, entry: u32, unknown_roots: &[u32]) -> Vec<BlockSafety> {
    let n = cfg.blocks.len();
    let index = |addr: u32| cfg.blocks.binary_search_by_key(&addr, |b| b.start).ok();

    // Forward constant propagation to a fixpoint. `None` = unreached;
    // joining unknown state in is harmless (join with ⊤ stays ⊤), so
    // blocks only reachable dynamically classify conservatively via
    // `unwrap_or(unknown)` below.
    let unknown: RegState = [None; NREGS];
    let mut in_states: Vec<Option<RegState>> = vec![None; n];
    if let Some(i) = index(entry) {
        in_states[i] = Some([Some(0); NREGS]);
    }
    for &r in unknown_roots {
        if let Some(i) = index(r) {
            in_states[i] = Some(unknown);
        }
    }

    let mut changed = true;
    while changed {
        changed = false;
        for bi in 0..n {
            let Some(in_state) = in_states[bi] else {
                continue;
            };
            let b = &cfg.blocks[bi];
            let out = block_out_state(cfg, b, &in_state);
            for &succ in &b.succs {
                let Some(si) = index(succ) else { continue };
                let flow = if succ == b.end && continuation_clobbers(b) {
                    unknown
                } else {
                    out
                };
                let merged = match &in_states[si] {
                    Some(cur) => join(cur, &flow),
                    None => flow,
                };
                if in_states[si] != Some(merged) {
                    in_states[si] = Some(merged);
                    changed = true;
                }
            }
        }
    }

    // Pass 2: collect evidence per block, plus every proven store
    // target so SMC *victims* get flagged alongside the stores.
    let mut out: Vec<BlockSafety> = Vec::with_capacity(n);
    let mut known_store_ranges: Vec<(u32, u32)> = Vec::new();
    for (bi, b) in cfg.blocks.iter().enumerate() {
        let mut class = SafetyClass::NativeSafe;
        let mut reasons: Vec<String> = Vec::new();
        let mut push = |class_ref: &mut SafetyClass, c: SafetyClass, r: String| {
            *class_ref = (*class_ref).max(c);
            if !reasons.contains(&r) {
                reasons.push(r);
            }
        };

        if b.has_indirect_exit() {
            push(
                &mut class,
                SafetyClass::StepArenaOnly,
                "indirect-control-flow".to_string(),
            );
        }

        let mut state = in_states[bi].unwrap_or(unknown);
        for (_, d) in cfg.block_insns(b) {
            for op in &d.ops {
                match *op {
                    Op::Svc(_) => push(&mut class, SafetyClass::InterpOnly, "syscall".to_string()),
                    Op::Udf => push(&mut class, SafetyClass::InterpOnly, "udf".to_string()),
                    Op::Eret => push(&mut class, SafetyClass::InterpOnly, "eret".to_string()),
                    Op::Halt => push(&mut class, SafetyClass::InterpOnly, "halt".to_string()),
                    Op::CopRead { .. } | Op::CopWrite { .. } => push(
                        &mut class,
                        SafetyClass::InterpOnly,
                        "coprocessor-access".to_string(),
                    ),
                    Op::Store {
                        base, off, size, ..
                    } => match state[base as usize].map(|v| v.wrapping_add(off as u32)) {
                        None => push(
                            &mut class,
                            SafetyClass::StepArenaOnly,
                            "store-unknown-address".to_string(),
                        ),
                        Some(addr) => {
                            let end = addr.wrapping_add(size.bytes());
                            if addr >= DEVICE_BASE {
                                push(
                                    &mut class,
                                    SafetyClass::StepArenaOnly,
                                    "mmio-store".to_string(),
                                );
                                if addr & !0xFFF == INTC_BASE {
                                    push(
                                        &mut class,
                                        SafetyClass::StepArenaOnly,
                                        "irq-sensitive".to_string(),
                                    );
                                }
                            } else {
                                known_store_ranges.push((addr, end));
                                if cfg.block_containing(addr).is_some()
                                    || cfg.block_containing(end.wrapping_sub(1)).is_some()
                                {
                                    push(
                                        &mut class,
                                        SafetyClass::StepArenaOnly,
                                        "smc-store".to_string(),
                                    );
                                }
                            }
                        }
                    },
                    Op::Load { base, off, .. } => {
                        match state[base as usize].map(|v| v.wrapping_add(off as u32)) {
                            None => push(
                                &mut class,
                                SafetyClass::StepArenaOnly,
                                "load-unknown-address".to_string(),
                            ),
                            Some(addr) if addr >= DEVICE_BASE => push(
                                &mut class,
                                SafetyClass::StepArenaOnly,
                                "mmio-load".to_string(),
                            ),
                            Some(_) => {}
                        }
                    }
                    // Stack-push calls store to a proven stack slot when
                    // sp is known; an unknown sp is an unknown store.
                    Op::Call {
                        link: LinkKind::Push(sp),
                        ..
                    }
                    | Op::CallReg {
                        link: LinkKind::Push(sp),
                        ..
                    }
                    | Op::Ret(RetKind::Pop(sp))
                        if state[sp as usize].is_none() =>
                    {
                        push(
                            &mut class,
                            SafetyClass::StepArenaOnly,
                            "stack-unknown-address".to_string(),
                        )
                    }
                    _ => {}
                }
                transfer_op(&mut state, op);
            }
        }
        out.push(BlockSafety { class, reasons });
    }

    // SMC victims: any block whose byte range a proven store hits must
    // stay under digest-checked execution even if its own ops are tame.
    for (b, safety) in cfg.blocks.iter().zip(out.iter_mut()) {
        let hit = known_store_ranges
            .iter()
            .any(|&(lo, hi)| lo < b.end && hi > b.start);
        if hit {
            safety.class = safety.class.max(SafetyClass::StepArenaOnly);
            let r = "smc-target".to_string();
            if !safety.reasons.contains(&r) {
                safety.reasons.push(r);
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbench_core::cfg::Terminator;
    use simbench_core::ir::{Decoded, InsnClass, MemSize};

    /// One hand-built block: (start, ops per insn, terminator, succs).
    type BlockSpec = (u32, Vec<Vec<Op>>, Terminator, Vec<u32>);

    /// Hand-build a CFG, with every instruction 4 bytes.
    fn cfg_of(blocks: &[BlockSpec]) -> Cfg {
        let mut insns = Vec::new();
        let mut out_blocks = Vec::new();
        for (start, insn_ops, term, succs) in blocks {
            let first_insn = insns.len();
            let mut pc = *start;
            for ops in insn_ops {
                insns.push((pc, Decoded::new(4, ops.as_slice(), InsnClass::Alu)));
                pc += 4;
            }
            out_blocks.push(Block {
                start: *start,
                end: pc,
                first_insn,
                n_insns: insn_ops.len(),
                terminator: *term,
                succs: succs.clone(),
                digest: 0,
                loop_header: false,
            });
        }
        Cfg {
            insns,
            blocks: out_blocks,
            violations: Vec::new(),
        }
    }

    fn mov(rd: u8, imm: u32) -> Op {
        Op::Alu {
            op: AluOp::Mov,
            rd,
            rn: 0,
            src: Operand::Imm(imm),
            set_flags: false,
        }
    }

    #[test]
    fn straight_alu_block_is_native_safe() {
        let cfg = cfg_of(&[(
            0,
            vec![vec![mov(1, 5)], vec![mov(2, 9)]],
            Terminator::FallThrough,
            vec![],
        )]);
        let s = classify(&cfg, 0, &[]);
        assert_eq!(s[0].class, SafetyClass::NativeSafe);
        assert!(s[0].reasons.is_empty());
    }

    #[test]
    fn exception_ops_force_interp_only() {
        let cfg = cfg_of(&[(0, vec![vec![Op::Svc(3)]], Terminator::Trap, vec![4])]);
        let s = classify(&cfg, 0, &[]);
        assert_eq!(s[0].class, SafetyClass::InterpOnly);
        assert_eq!(s[0].reasons, vec!["syscall"]);
    }

    #[test]
    fn indirect_exit_is_step_arena() {
        let cfg = cfg_of(&[(
            0,
            vec![vec![Op::BranchReg { rm: 1 }]],
            Terminator::IndirectBranch,
            vec![],
        )]);
        let s = classify(&cfg, 0, &[]);
        assert_eq!(s[0].class, SafetyClass::StepArenaOnly);
        assert_eq!(s[0].reasons, vec!["indirect-control-flow"]);
    }

    #[test]
    fn const_prop_resolves_mmio_store_and_irq_sensitivity() {
        // movw/movt-style constant build, then store to the INTC page.
        let ops = vec![
            vec![mov(1, INTC_BASE & 0xFFFF)],
            vec![Op::Alu {
                op: AluOp::Orr,
                rd: 1,
                rn: 1,
                src: Operand::Imm(INTC_BASE & 0xFFFF_0000),
                set_flags: false,
            }],
            vec![Op::Store {
                rs: 2,
                base: 1,
                off: 0,
                size: MemSize::B4,
                nonpriv: false,
            }],
        ];
        let cfg = cfg_of(&[(0, ops, Terminator::FallThrough, vec![])]);
        let s = classify(&cfg, 0, &[]);
        assert_eq!(s[0].class, SafetyClass::StepArenaOnly);
        assert!(s[0].reasons.contains(&"mmio-store".to_string()));
        assert!(s[0].reasons.contains(&"irq-sensitive".to_string()));
    }

    #[test]
    fn ram_store_into_code_marks_store_and_target() {
        // Block 0 stores to address 0x104, inside block 1's range.
        let cfg = cfg_of(&[
            (
                0,
                vec![
                    vec![mov(1, 0x104)],
                    vec![Op::Store {
                        rs: 2,
                        base: 1,
                        off: 0,
                        size: MemSize::B4,
                        nonpriv: false,
                    }],
                ],
                Terminator::Branch,
                vec![0x100],
            ),
            (
                0x100,
                vec![vec![Op::Nop], vec![Op::Nop]],
                Terminator::FallThrough,
                vec![],
            ),
        ]);
        let s = classify(&cfg, 0, &[]);
        assert!(s[0].reasons.contains(&"smc-store".to_string()));
        assert_eq!(s[1].class, SafetyClass::StepArenaOnly);
        assert!(s[1].reasons.contains(&"smc-target".to_string()));
    }

    #[test]
    fn constants_survive_direct_edges_but_not_call_returns() {
        // Entry sets r1, branches to 0x100 which stores through r1:
        // the address stays proven across the direct edge.
        let cfg = cfg_of(&[
            (0, vec![vec![mov(1, 0x40)]], Terminator::Branch, vec![0x100]),
            (
                0x100,
                vec![vec![Op::Store {
                    rs: 2,
                    base: 1,
                    off: 0,
                    size: MemSize::B4,
                    nonpriv: false,
                }]],
                Terminator::FallThrough,
                vec![],
            ),
        ]);
        let s = classify(&cfg, 0, &[]);
        assert!(
            !s[1].reasons.contains(&"store-unknown-address".to_string()),
            "{:?}",
            s[1].reasons
        );

        // Same store placed on a call continuation: the callee may
        // clobber r1, so the address is unknown there.
        let cfg = cfg_of(&[
            (
                0,
                vec![
                    vec![mov(1, 0x40)],
                    vec![Op::Call {
                        target: 0x200,
                        ret: 8,
                        link: LinkKind::Register(14),
                    }],
                ],
                Terminator::Call,
                vec![0x200, 8],
            ),
            (
                8,
                vec![vec![Op::Store {
                    rs: 2,
                    base: 1,
                    off: 0,
                    size: MemSize::B4,
                    nonpriv: false,
                }]],
                Terminator::FallThrough,
                vec![],
            ),
            (
                0x200,
                vec![vec![Op::Ret(RetKind::Register(14))]],
                Terminator::Ret,
                vec![],
            ),
        ]);
        let s = classify(&cfg, 0, &[]);
        assert!(s[1].reasons.contains(&"store-unknown-address".to_string()));
    }

    #[test]
    fn loop_join_keeps_agreeing_constants() {
        // 0: r1 = 0x40 → 0x10; 0x10: store [r1]; beq 0x10 (self-loop).
        // The join of entry state and loop back-edge state agrees on
        // r1, so the store address stays proven around the loop.
        let cfg = cfg_of(&[
            (0, vec![vec![mov(1, 0x40)]], Terminator::Branch, vec![0x10]),
            (
                0x10,
                vec![
                    vec![Op::Store {
                        rs: 2,
                        base: 1,
                        off: 0,
                        size: MemSize::B4,
                        nonpriv: false,
                    }],
                    vec![Op::BranchCond {
                        cond: simbench_core::ir::Cond::Eq,
                        target: 0x10,
                    }],
                ],
                Terminator::BranchCond,
                vec![0x10, 0x18],
            ),
        ]);
        let s = classify(&cfg, 0, &[]);
        assert!(
            !s[1].reasons.contains(&"store-unknown-address".to_string()),
            "{:?}",
            s[1].reasons
        );
    }
}

//! Hot-path source lint.
//!
//! The allocation-free hot loops (interp/dbt dispatch, the decoders,
//! the obs record paths) were made free of per-event heap traffic and
//! of formatted panic machinery; this lint keeps them that way. It is a
//! line-based scan of a fixed list of designated files, not a parser —
//! deliberately simple, so a violation message points at a line a
//! human can read in context.
//!
//! Rules, applied outside `#[cfg(test)]` modules and `#[cold]`
//! functions:
//!
//! - `format!(`, `vec![` and `Box::new(` are always flagged: each one
//!   is a heap allocation on a path that must not allocate.
//! - `assert!`/`assert_eq!`/`assert_ne!`/`panic!`/`unreachable!` are
//!   flagged only when their message interpolates (`{` in the string):
//!   a formatted panic keeps its operands alive across the happy path
//!   and spills hot-loop registers (see `core/src/ir.rs`). Plain
//!   string panics and `debug_assert*` (compiled out in release) are
//!   fine.
//! - A line carrying (or preceded by a line carrying)
//!   `lint:allow(hot-path)` is exempt: constructors and other cold
//!   set-up code inside hot-path files annotate themselves.

use std::fmt;
use std::path::Path;

/// Files the lint guards, relative to the repository root. These are
/// the modules on the per-instruction path of at least one engine.
pub const HOT_PATH_FILES: &[&str] = &[
    "crates/core/src/alu.rs",
    "crates/core/src/exec.rs",
    "crates/core/src/ir.rs",
    "crates/core/src/tlb.rs",
    "crates/dbt/src/cache.rs",
    "crates/dbt/src/lib.rs",
    "crates/dbt/src/opt.rs",
    "crates/dbt/src/tlb.rs",
    "crates/dbt/src/versions.rs",
    "crates/interp/src/lib.rs",
    "crates/isa-armlet/src/decode.rs",
    "crates/isa-armlet/src/decode_gen.rs",
    "crates/isa-petix/src/decode.rs",
    "crates/isa-petix/src/decode_gen.rs",
    "crates/isa-riscle/src/decode.rs",
    "crates/isa-riscle/src/decode_gen.rs",
    "crates/obs/src/metrics.rs",
    "crates/obs/src/ring.rs",
];

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line number (0 for file-level findings).
    pub line: usize,
    /// Which rule fired.
    pub what: &'static str,
    /// The offending line, trimmed.
    pub text: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.what, self.text
        )
    }
}

/// Allocation constructs never allowed on a hot path.
const ALLOC_PATTERNS: &[(&str, &str)] = &[
    ("format!(", "heap allocation (format!)"),
    ("vec![", "heap allocation (vec![)"),
    ("Box::new(", "heap allocation (Box::new)"),
];

/// Panic-family macros allowed only with non-interpolating messages.
const PANIC_PATTERNS: &[(&str, &str)] = &[
    ("assert!(", "formatted assert"),
    ("assert_eq!(", "formatted assert"),
    ("assert_ne!(", "formatted assert"),
    ("panic!(", "formatted panic"),
    ("unreachable!(", "formatted panic"),
];

/// True if `line` contains `pat` at a position not preceded by an
/// identifier character (so `assert!(` does not match inside
/// `debug_assert!(`). Returns the match offset.
fn find_bare(line: &str, pat: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = line[from..].find(pat) {
        let at = from + rel;
        let preceded = line[..at]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if !preceded {
            return Some(at);
        }
        from = at + pat.len();
    }
    None
}

/// Scan one file's text. `file` is the label used in findings.
pub fn lint_file(file: &str, text: &str) -> Vec<LintFinding> {
    let mut findings = Vec::new();
    let mut prev_allows = false;
    // Brace-depth tracking for the body following a `#[cold]` marker.
    let mut cold_pending = false;
    let mut cold_depth = 0usize;

    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();

        // Test modules sit at the bottom of every file in this repo;
        // nothing below the first test gate is a hot path.
        if line.starts_with("#[cfg(test)]") {
            break;
        }

        if cold_pending || cold_depth > 0 {
            let opens = raw.matches('{').count();
            let closes = raw.matches('}').count();
            if cold_pending && opens > 0 {
                cold_pending = false;
                cold_depth = opens;
                cold_depth = cold_depth.saturating_sub(closes);
                if cold_depth == 0 {
                    // One-line body.
                    prev_allows = false;
                    continue;
                }
            } else if cold_depth > 0 {
                cold_depth += opens;
                cold_depth = cold_depth.saturating_sub(closes);
            }
            prev_allows = false;
            continue;
        }
        if line.starts_with("#[cold]") {
            cold_pending = true;
            prev_allows = false;
            continue;
        }

        let allows = raw.contains("lint:allow(hot-path)");
        let exempt = allows || prev_allows;
        prev_allows = allows;
        if exempt || line.starts_with("//") {
            continue;
        }

        for &(pat, what) in ALLOC_PATTERNS {
            if find_bare(raw, pat).is_some() {
                findings.push(LintFinding {
                    file: file.to_string(),
                    line: i + 1,
                    what,
                    text: line.to_string(),
                });
            }
        }
        for &(pat, what) in PANIC_PATTERNS {
            if let Some(at) = find_bare(raw, pat) {
                // Formatted ⟺ the message string interpolates. Line-based:
                // a `{` anywhere in the macro's arguments on this line.
                let rest = &raw[at + pat.len()..];
                if rest.contains('{') {
                    findings.push(LintFinding {
                        file: file.to_string(),
                        line: i + 1,
                        what,
                        text: line.to_string(),
                    });
                }
            }
        }
    }
    findings
}

/// Lint every designated hot-path file under `root` (the repository
/// root). A missing file is itself a finding: renaming a hot-path
/// module must update the lint list, not silently escape it.
pub fn lint_root(root: &Path) -> Vec<LintFinding> {
    let mut findings = Vec::new();
    for &rel in HOT_PATH_FILES {
        match std::fs::read_to_string(root.join(rel)) {
            Ok(text) => findings.extend(lint_file(rel, &text)),
            Err(_) => findings.push(LintFinding {
                file: rel.to_string(),
                line: 0,
                what: "designated hot-path file missing",
                text: String::new(),
            }),
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn whats(text: &str) -> Vec<&'static str> {
        lint_file("t.rs", text)
            .into_iter()
            .map(|f| f.what)
            .collect()
    }

    #[test]
    fn flags_allocations() {
        assert_eq!(
            whats("fn f() { let v = vec![1, 2]; }"),
            vec!["heap allocation (vec![)"]
        );
        assert_eq!(
            whats("let s = format!(\"x{y}\");"),
            vec!["heap allocation (format!)"]
        );
        assert_eq!(
            whats("let b = Box::new(3);"),
            vec!["heap allocation (Box::new)"]
        );
    }

    #[test]
    fn formatted_panics_only() {
        assert_eq!(whats("panic!(\"bad {x}\");"), vec!["formatted panic"]);
        assert!(whats("panic!(\"bad\");").is_empty());
        assert_eq!(whats("assert!(ok, \"r{n}\");"), vec!["formatted assert"]);
        assert!(whats("assert!(ok);").is_empty());
        assert_eq!(
            whats("assert_eq!(a, b, \"{a}\");"),
            vec!["formatted assert"]
        );
    }

    #[test]
    fn debug_asserts_are_exempt() {
        assert!(whats("debug_assert!(x > 0, \"x={x}\");").is_empty());
        assert!(whats("debug_assert_eq!(a, b, \"{a}\");").is_empty());
    }

    #[test]
    fn cold_functions_are_exempt() {
        let text = "#[cold]\n#[inline(never)]\nfn die(x: u32) -> ! {\n    panic!(\"x = {x}\");\n}\nfn hot() { panic!(\"y = {y}\"); }\n";
        let f = lint_file("t.rs", text);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn allow_comment_suppresses_same_and_next_line() {
        assert!(whats("let v = vec![0; 4]; // lint:allow(hot-path)").is_empty());
        assert!(whats("// lint:allow(hot-path): built once\nlet v = vec![0; 4];").is_empty());
        assert_eq!(
            whats("// lint:allow(hot-path)\nlet a = 1;\nlet v = vec![0; 4];").len(),
            1
        );
    }

    #[test]
    fn test_modules_are_ignored() {
        let text = "fn hot() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let v = vec![1]; }\n}\n";
        assert!(lint_file("t.rs", text).is_empty());
    }

    #[test]
    fn the_repo_hot_paths_are_clean() {
        // The real rule run, as the CI job executes it. Walk up from the
        // crate dir to the workspace root.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let findings = lint_root(root);
        assert!(
            findings.is_empty(),
            "hot-path lint violations:\n{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

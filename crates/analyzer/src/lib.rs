//! # simbench-analyzer
//!
//! Static guest-code analysis: everything the suite can prove about a
//! guest image *without running it on an engine*.
//!
//! Three results per subject, produced by [`analyze_image`] (or the
//! [`analyze_workload`]/[`analyze_fuzz`] conveniences) and persisted as
//! a versioned [`artifact`]:
//!
//! 1. **CFG recovery and invariant proofs** — recursive-descent decode
//!    from the entry point and exception vectors
//!    ([`simbench_core::cfg`]); every violation the walk finds
//!    (undecodable reachable instruction, branch off the image, control
//!    falling off the end, overlapping decodings, no reachable halt) is
//!    a bug in a workload generator or a decoder, surfaced before any
//!    engine runs the bytes.
//! 2. **Static event-profile prediction** ([`predict`]) — for
//!    deterministic bounded programs, the exact [`Counters`] vector a
//!    correct interpreter-structured engine must retire. With
//!    [`AnalyzeOpts::check`] the prediction is verified against a real
//!    interpreter run, which makes the analyzer and the interpreter
//!    N-version implementations of the same reference semantics.
//! 3. **DBT-promotion safety classes** ([`safety`]) — a conservative
//!    per-block label (`native-safe` / `step-arena-only` /
//!    `interp-only`) that is the promotion oracle for the native-DBT
//!    roadmap item: a region translator may only lift blocks the
//!    analyzer proves free of SMC, MMIO and exception exits.
//!
//! The crate also hosts the [`lint`] that keeps the designated hot-path
//! modules allocation- and format-free.
//!
//! [`Counters`]: simbench_core::Counters

pub mod artifact;
pub mod lint;
pub mod predict;
pub mod safety;

pub use artifact::{to_json, SCHEMA};
pub use lint::{lint_file, lint_root, LintFinding, HOT_PATH_FILES};
pub use predict::{predict, AbstainCause, Prediction};
pub use safety::{classify, BlockSafety, SafetyClass};

use simbench_campaign::registry::{dispatch_guest, GuestSpec, GuestVisitor};
use simbench_campaign::{measure, Guest, Workload};
use simbench_core::cfg::Cfg;
use simbench_core::engine::{Engine, ExitReason, RunLimits};
use simbench_core::image::GuestImage;
use simbench_core::isa::Isa;
use simbench_core::machine::Machine;
use simbench_interp::Interp;
use simbench_obs::Counter;
use simbench_platform::Platform;

static OBS_SUBJECTS: Counter = Counter::new("analyzer.subjects");
static OBS_VIOLATIONS: Counter = Counter::new("analyzer.violations");
static OBS_CHECK_MISMATCHES: Counter = Counter::new("analyzer.check_mismatches");

/// Exception-vector roots added to every recovery: both ISAs reset
/// their vector base to 0 and lay the five vectors out at stride 0x20
/// (undef, syscall, data abort, prefetch abort, irq).
pub const VECTOR_ROOTS: [u32; 5] = [0x00, 0x20, 0x40, 0x60, 0x80];

/// Analysis options.
#[derive(Debug, Clone, Copy)]
pub struct AnalyzeOpts {
    /// Instruction budget for the static prediction.
    pub fuel: u64,
    /// Also run the reference interpreter and compare counters.
    pub check: bool,
}

impl Default for AnalyzeOpts {
    fn default() -> Self {
        AnalyzeOpts {
            fuel: 50_000_000,
            check: false,
        }
    }
}

/// One recovered block with its safety classification.
#[derive(Debug, Clone)]
pub struct BlockReport {
    /// Address of the first instruction.
    pub start: u32,
    /// One past the last byte.
    pub end: u32,
    /// Instruction count.
    pub insns: usize,
    /// FNV-1a content digest (SMC invalidation key).
    pub digest: u64,
    /// Dominator-verified loop header.
    pub loop_header: bool,
    /// Promotion safety class.
    pub class: SafetyClass,
    /// Evidence for the class; empty for `NativeSafe`.
    pub reasons: Vec<String>,
}

/// Outcome of the static-vs-dynamic counter check.
#[derive(Debug, Clone)]
pub struct CheckResult {
    /// True when the interpreter agreed with the prediction (or the
    /// check was inapplicable and says so in `detail`).
    pub matched: bool,
    /// Human-readable mismatch rows, empty on success.
    pub detail: Vec<String>,
}

/// Everything the analyzer proved about one subject image.
#[derive(Debug, Clone)]
pub struct SubjectAnalysis {
    /// `guest/workload` or `guest/fuzz:seed[k]` label.
    pub subject: String,
    /// Guest ISA name.
    pub guest: &'static str,
    /// Image entry point.
    pub entry: u32,
    /// Total section bytes.
    pub image_size: usize,
    /// One past the highest section byte.
    pub image_limit: u32,
    /// Reachable instruction count.
    pub insns: usize,
    /// Static edge count.
    pub edges: usize,
    /// Dominator-verified loop headers.
    pub loop_headers: usize,
    /// Recovered blocks with safety classes, sorted by start address.
    pub blocks: Vec<BlockReport>,
    /// Rendered CFG/decoder invariant violations.
    pub violations: Vec<String>,
    /// Static event-profile prediction.
    pub prediction: Prediction,
    /// Interpreter cross-check, when requested.
    pub check: Option<CheckResult>,
}

impl SubjectAnalysis {
    /// True when the subject passed: no invariant violations and (if
    /// checked) the interpreter matched the prediction.
    pub fn ok(&self) -> bool {
        self.violations.is_empty() && self.check.as_ref().is_none_or(|c| c.matched)
    }

    /// Blocks per safety class: `[native-safe, step-arena-only,
    /// interp-only]`.
    pub fn class_counts(&self) -> [usize; 3] {
        let mut n = [0usize; 3];
        for b in &self.blocks {
            n[match b.class {
                SafetyClass::NativeSafe => 0,
                SafetyClass::StepArenaOnly => 1,
                SafetyClass::InterpOnly => 2,
            }] += 1;
        }
        n
    }

    /// One-line summary for CLI output.
    pub fn render_line(&self) -> String {
        let [ns, sa, io] = self.class_counts();
        let pred = match &self.prediction {
            Prediction::Exact { counters } => {
                format!("predicted {} insns", counters.instructions)
            }
            Prediction::Abstained { cause, .. } => format!("abstained ({cause})"),
        };
        let check = match &self.check {
            None => String::new(),
            Some(c) if c.matched => ", check ok".to_string(),
            Some(_) => ", CHECK MISMATCH".to_string(),
        };
        let status = if self.violations.is_empty() {
            "ok"
        } else {
            "VIOLATIONS"
        };
        format!(
            "{}: {} [{} blocks: {} native-safe, {} step-arena, {} interp-only; {} insns, {} edges, {} loops] {}{}",
            self.subject,
            status,
            self.blocks.len(),
            ns,
            sa,
            io,
            self.insns,
            self.edges,
            self.loop_headers,
            pred,
            check
        )
    }

    /// Detail lines worth printing after the summary: violations and
    /// check mismatches.
    pub fn render_problems(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .violations
            .iter()
            .map(|v| format!("  violation: {v}"))
            .collect();
        if let Some(c) = &self.check {
            out.extend(c.detail.iter().map(|d| format!("  check: {d}")));
        }
        out
    }
}

/// Analyze one image for `guest` under the label `subject`.
pub fn analyze_image(
    guest: Guest,
    subject: &str,
    image: &GuestImage,
    opts: &AnalyzeOpts,
) -> SubjectAnalysis {
    struct Analyze<'a> {
        subject: &'a str,
        image: &'a GuestImage,
        opts: &'a AnalyzeOpts,
    }
    impl GuestVisitor for Analyze<'_> {
        type Out = SubjectAnalysis;
        fn visit<G: GuestSpec>(self) -> SubjectAnalysis {
            analyze_on::<G::Isa>(G::GUEST, self.subject, self.image, self.opts)
        }
    }
    dispatch_guest(
        guest,
        Analyze {
            subject,
            image,
            opts,
        },
    )
}

/// Analyze one campaign workload at a campaign scale — the exact image
/// a campaign cell of the same key measures. `None` for matrix holes
/// (workloads that do not exist on the guest).
pub fn analyze_workload(
    guest: Guest,
    workload: Workload,
    scale: u64,
    opts: &AnalyzeOpts,
) -> Option<SubjectAnalysis> {
    let image = measure::workload_image(guest, workload, scale)?;
    let subject = format!("{}/{}", guest.isa_name(), workload.id());
    Some(analyze_image(guest, &subject, &image, opts))
}

/// Analyze fuzzed program `index` of the differ's seeded stream — the
/// same binary `simbench-harness differ fuzz` would run.
pub fn analyze_fuzz(guest: Guest, seed: u64, index: u32, opts: &AnalyzeOpts) -> SubjectAnalysis {
    let pseed = simbench_differ::program_seed(seed, index);
    let image = simbench_differ::generate(guest, pseed);
    let subject = format!("{}/fuzz:{seed:#x}[{index}]", guest.isa_name());
    analyze_image(guest, &subject, &image, opts)
}

fn analyze_on<I: Isa>(
    guest: Guest,
    subject: &str,
    image: &GuestImage,
    opts: &AnalyzeOpts,
) -> SubjectAnalysis {
    OBS_SUBJECTS.add(1);
    let mut roots = vec![image.entry];
    roots.extend(VECTOR_ROOTS);
    let cfg = Cfg::recover::<I>(image, &roots);
    let classes = safety::classify(&cfg, image.entry, &VECTOR_ROOTS);
    let blocks = cfg
        .blocks
        .iter()
        .zip(&classes)
        .map(|(b, s)| BlockReport {
            start: b.start,
            end: b.end,
            insns: b.n_insns,
            digest: b.digest,
            loop_header: b.loop_header,
            class: s.class,
            reasons: s.reasons.clone(),
        })
        .collect();
    let violations: Vec<String> = cfg.violations.iter().map(|v| v.to_string()).collect();
    OBS_VIOLATIONS.add(violations.len() as u64);

    let prediction = predict::predict::<I>(image, opts.fuel);
    let check = opts
        .check
        .then(|| run_check::<I>(image, &prediction, opts.fuel));
    if let Some(c) = &check {
        if !c.matched {
            OBS_CHECK_MISMATCHES.add(1);
        }
    }

    SubjectAnalysis {
        subject: subject.to_string(),
        guest: guest.isa_name(),
        entry: image.entry,
        image_size: image.size(),
        image_limit: image.limit(),
        insns: cfg.insns.len(),
        edges: cfg.edge_count(),
        loop_headers: cfg.loop_headers(),
        blocks,
        violations,
        prediction,
        check,
    }
}

/// Run the reference interpreter under the same instruction budget and
/// require counter-for-counter agreement with the prediction.
fn run_check<I: Isa>(image: &GuestImage, prediction: &Prediction, fuel: u64) -> CheckResult {
    let (want_counters, want_exit) = match prediction {
        Prediction::Exact { counters } => (counters, ExitReason::Halted),
        Prediction::Abstained {
            cause: AbstainCause::FuelExhausted { .. },
            partial,
        } => (partial, ExitReason::InsnLimit),
        Prediction::Abstained {
            cause: AbstainCause::TimerRead,
            ..
        } => {
            // A timer-reading program's executions are not comparable
            // run to run; there is nothing exact to check.
            return CheckResult {
                matched: true,
                detail: vec![
                    "check inapplicable: nondeterministic timer input, no exact claim".to_string(),
                ],
            };
        }
    };

    let mut m = Machine::<I, Platform>::boot(image, Platform::new());
    let out = Interp::<I>::new().run(&mut m, &RunLimits::insns(fuel));
    let mut detail = Vec::new();
    if out.exit != want_exit {
        detail.push(format!("exit: predicted {want_exit}, interp {}", out.exit));
    }
    if out.counters != *want_counters {
        for ((name, got), (_, want)) in out.counters.rows().iter().zip(want_counters.rows()) {
            if *got != want {
                detail.push(format!("{name}: predicted {want}, interp {got}"));
            }
        }
    }
    CheckResult {
        matched: detail.is_empty(),
        detail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbench_suite::Benchmark;

    #[test]
    fn workload_analysis_is_clean_and_prediction_checks_out() {
        let opts = AnalyzeOpts {
            fuel: 5_000_000,
            check: true,
        };
        let a = analyze_workload(
            Guest::Armlet,
            Workload::Suite(Benchmark::Syscall),
            20_000,
            &opts,
        )
        .expect("syscall exists on armlet");
        assert!(
            a.ok(),
            "{}\n{}",
            a.render_line(),
            a.render_problems().join("\n")
        );
        assert!(a.prediction.is_exact());
        assert!(!a.blocks.is_empty());
        // The syscall benchmark's handler-heavy kernel cannot be fully
        // native: something must be interp-only (the svc + handlers).
        assert!(a.class_counts()[2] > 0);
    }

    #[test]
    fn matrix_holes_return_none() {
        let opts = AnalyzeOpts::default();
        assert!(analyze_workload(
            Guest::Petix,
            Workload::Suite(Benchmark::NonprivAccess),
            20_000,
            &opts,
        )
        .is_none());
    }

    #[test]
    fn fuzz_analysis_checks_out_on_both_guests() {
        let opts = AnalyzeOpts {
            fuel: 2_000_000,
            check: true,
        };
        for guest in Guest::ALL {
            for k in 0..2 {
                let a = analyze_fuzz(guest, 0x5EED, k, &opts);
                assert!(
                    a.ok(),
                    "{}\n{}",
                    a.render_line(),
                    a.render_problems().join("\n")
                );
            }
        }
    }

    #[test]
    fn fuel_exhaustion_abstains_and_still_matches_the_prefix() {
        let opts = AnalyzeOpts {
            fuel: 1_000,
            check: true,
        };
        let a = analyze_workload(
            Guest::Armlet,
            Workload::Suite(Benchmark::MemHot),
            20_000,
            &opts,
        )
        .unwrap();
        match &a.prediction {
            Prediction::Abstained {
                cause: AbstainCause::FuelExhausted { at },
                partial,
            } => {
                assert_eq!(*at, 1_000);
                assert_eq!(partial.instructions, 1_000);
            }
            other => panic!("expected fuel abstention, got {other:?}"),
        }
        let check = a.check.as_ref().unwrap();
        assert!(check.matched, "{:?}", check.detail);
    }
}

//! Decoder-totality sweeps: the static analyzer's invariant proofs are
//! only as strong as the decoders they rest on, so both guest decoders
//! are driven over their entire encoding space and must classify every
//! byte pattern as either a well-formed instruction (with a sane
//! length) or a `DecodeError` — never a panic, never a zero-op or
//! over-long decode.
//!
//! The armlet sweep covers all 2^32 words in release builds (the space
//! is partitioned across threads); under `cfg(debug_assertions)` the
//! same harness samples a coprime stride instead, keeping `cargo test`
//! fast while CI's release run proves the full space. The petix sweep
//! is exhaustive over the bytes the decoder dispatches on (opcode ×
//! mode byte), crossed with edge-pattern immediate fills and every
//! truncation length. The riscle sweep covers all 2^16 compressed
//! halfwords exhaustively plus the 32-bit space at the armlet stride.
//!
//! Since the production decoders are generated from the declarative
//! specs in each crate's `spec/*.isa`, the armlet and petix sweeps
//! double as the exhaustive equivalence proof: every visited pattern is
//! also decoded by the retained hand-written reference
//! (`decode_ref`) and the results must be identical.

use simbench_core::isa::Isa;
use simbench_isa_armlet::Armlet;
use simbench_isa_petix::decode::insn_len;
use simbench_isa_petix::Petix;
use simbench_isa_riscle::Riscle;

#[test]
fn armlet_decode_is_total_over_the_word_space() {
    // Coprime stride keeps the debug sample spread over every encoding
    // class rather than clustered at low words.
    let stride: u64 = if cfg!(debug_assertions) { 65_537 } else { 1 };
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let chunk = (1u64 << 32).div_ceil(threads as u64);

    let handles: Vec<_> = (0..threads as u64)
        .map(|t| {
            std::thread::spawn(move || {
                let (lo, hi) = (t * chunk, ((t + 1) * chunk).min(1 << 32));
                let (mut ok, mut err) = (0u64, 0u64);
                let mut w = lo;
                while w < hi {
                    let word = w as u32;
                    let generated = Armlet::decode(&word.to_le_bytes(), 0x1000);
                    let reference = simbench_isa_armlet::decode_ref::decode(word, 0x1000);
                    assert_eq!(
                        generated, reference,
                        "word {w:#010x}: generated != reference"
                    );
                    match generated {
                        Ok(d) => {
                            assert_eq!(d.len, 4, "word {w:#010x}");
                            assert!(!d.ops.is_empty(), "word {w:#010x} decoded to zero ops");
                            ok += 1;
                        }
                        Err(e) => {
                            assert_eq!(e.pc, 0x1000);
                            err += 1;
                        }
                    }
                    w += stride;
                }
                (ok, err)
            })
        })
        .collect();

    let (mut ok, mut err) = (0u64, 0u64);
    for h in handles {
        let (o, e) = h.join().expect("decoder panicked during the sweep");
        ok += o;
        err += e;
    }
    // Both outcomes must exist: an all-Ok decoder has no reserved
    // space left for the Udf path, an all-Err one decodes nothing.
    assert!(ok > 0 && err > 0, "ok={ok} err={err}");
}

#[test]
fn armlet_truncated_fetches_error_instead_of_panicking() {
    for n in 0..4usize {
        for fill in [0x00u8, 0xFF, 0x55, 0xAA] {
            let bytes = [fill; 4];
            assert!(
                Armlet::decode(&bytes[..n], 0).is_err(),
                "{n}-byte fetch of {fill:#04x} fill must not decode"
            );
        }
    }
}

#[test]
fn petix_decode_is_total_and_agrees_with_the_length_table() {
    const FILLS: [u8; 6] = [0x00, 0xFF, 0x55, 0xAA, 0x80, 0x01];
    let (mut ok, mut err) = (0u64, 0u64);
    for opc in 0..=255u8 {
        for b1 in 0..=255u8 {
            for fill in FILLS {
                let bytes = [opc, b1, fill, fill, fill, fill];
                assert_eq!(
                    Petix::decode(&bytes, 0x2000),
                    simbench_isa_petix::decode_ref::decode(&bytes, 0x2000),
                    "bytes {bytes:02x?}: generated != reference"
                );
                match Petix::decode(&bytes, 0x2000) {
                    Ok(d) => {
                        assert!(
                            (1..=Petix::MAX_INSN_BYTES).contains(&(d.len as usize)),
                            "opc {opc:#04x}: len {}",
                            d.len
                        );
                        assert!(!d.ops.is_empty(), "opc {opc:#04x} decoded to zero ops");
                        // The static length table is the decoder's
                        // ground truth; a decode the table disowns (or
                        // at a different length) would desync the CFG
                        // walk from execution.
                        assert_eq!(
                            insn_len(opc),
                            Some(d.len as usize),
                            "opc {opc:#04x} length table disagrees"
                        );
                        ok += 1;
                    }
                    Err(e) => {
                        assert_eq!(e.pc, 0x2000);
                        err += 1;
                    }
                }
                // Every truncation of a valid window must error (petix
                // opcodes all need at least their length), never panic.
                for n in 0..Petix::MAX_INSN_BYTES {
                    assert_eq!(
                        Petix::decode(&bytes[..n], 0x2000),
                        simbench_isa_petix::decode_ref::decode(&bytes[..n], 0x2000),
                        "truncated bytes {:02x?}: generated != reference",
                        &bytes[..n]
                    );
                    if let Ok(d) = Petix::decode(&bytes[..n], 0x2000) {
                        assert!(
                            (d.len as usize) <= n,
                            "opc {opc:#04x}: {n}-byte window decoded {} bytes",
                            d.len
                        );
                    }
                }
            }
        }
    }
    assert!(ok > 0 && err > 0, "ok={ok} err={err}");
}

#[test]
fn riscle_decode_is_total_and_agrees_with_the_length_table() {
    use simbench_isa_riscle::decode::insn_len as riscle_len;
    // The first halfword fully determines the length class, so sweeping
    // all 2^16 of them exhausts the compressed space; edge-pattern
    // upper halves cover the 32-bit operand fields.
    const FILLS: [u16; 6] = [0x0000, 0xFFFF, 0x5555, 0xAAAA, 0x8000, 0x0001];
    let (mut ok, mut err) = (0u64, 0u64);
    for h0 in 0..=0xFFFFu16 {
        let len = riscle_len(h0);
        assert!(len == 2 || len == 4, "h0 {h0:#06x}: length {len}");
        for fill in FILLS {
            let word = ((fill as u32) << 16) | h0 as u32;
            let bytes = word.to_le_bytes();
            match Riscle::decode(&bytes, 0x3000) {
                Ok(d) => {
                    // The length table is the CFG walker's ground
                    // truth, exactly as for petix.
                    assert_eq!(d.len as usize, len, "h0 {h0:#06x} length table disagrees");
                    assert!(!d.ops.is_empty(), "h0 {h0:#06x} decoded to zero ops");
                    ok += 1;
                }
                Err(e) => {
                    assert_eq!(e.pc, 0x3000);
                    err += 1;
                }
            }
            // Truncated windows must never decode past the bytes given.
            for n in 0..len {
                if let Ok(d) = Riscle::decode(&bytes[..n], 0x3000) {
                    assert!(
                        (d.len as usize) <= n,
                        "h0 {h0:#06x}: {n}-byte window decoded {} bytes",
                        d.len
                    );
                }
            }
            if len == 2 {
                // A compressed instruction must not look at the upper
                // halfword at all.
                assert_eq!(
                    Riscle::decode(&bytes, 0x3000),
                    Riscle::decode(&bytes[..2], 0x3000),
                    "h0 {h0:#06x}: compressed decode read past 2 bytes"
                );
                break;
            }
        }
    }
    assert!(ok > 0 && err > 0, "ok={ok} err={err}");
}

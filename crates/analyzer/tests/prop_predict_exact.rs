//! Property test: on straight-line fuzzed programs — deterministic,
//! acyclic, IRQs masked at boot — the static event-profile prediction
//! must be *exact*, and the reference interpreter must agree with it
//! counter for counter. This is the strongest form of the
//! static-vs-dynamic contract: the predictor and the interpreter are
//! independent implementations of the same reference semantics, and a
//! disagreement on any of the ~20 architectural event counters is a
//! bug in one of them.

use proptest::prelude::*;
use simbench_analyzer::{analyze_image, AnalyzeOpts, Prediction};
use simbench_campaign::Guest;
use simbench_differ::generate_straight_line;

proptest! {
    #[test]
    fn straight_line_prediction_is_exact_and_interp_agrees(
        seed: u64,
        guest_index in 0..Guest::ALL.len(),
    ) {
        let guest = Guest::ALL[guest_index];
        let image = generate_straight_line(guest, seed);
        let opts = AnalyzeOpts {
            fuel: 1_000_000,
            check: true,
        };
        let a = analyze_image(guest, "straight-line", &image, &opts);
        prop_assert!(
            matches!(a.prediction, Prediction::Exact { .. }),
            "seed {seed:#x} on {}: {:?}",
            guest.isa_name(),
            a.prediction
        );
        let check = a.check.as_ref().expect("check was requested");
        prop_assert!(
            check.matched,
            "seed {seed:#x} on {}:\n{}",
            guest.isa_name(),
            check.detail.join("\n")
        );
    }
}

//! # simbench-platform
//!
//! The simulated hardware platform every engine runs against: RAM at
//! physical address zero plus a small set of memory-mapped devices. This
//! is the analogue of the paper's platform support package (§II-C): it
//! provides the serial connection to the host, a timer, an interrupt
//! controller capable of software-generated interrupts, and a
//! side-effect-free "safe device" for the memory-mapped I/O benchmark.
//!
//! ## Memory map
//!
//! | Physical range            | Device |
//! |---------------------------|--------|
//! | `0x0000_0000..ram_size`   | RAM    |
//! | `0xF000_0000` (1 page)    | UART   |
//! | `0xF000_1000` (1 page)    | INTC   |
//! | `0xF000_2000` (1 page)    | Timer  |
//! | `0xF000_3000` (1 page)    | Safe device (ID/scratch registers) |
//! | `0xF000_4000` (1 page)    | Control (benchmark phase marks)    |
//!
//! ## Example
//!
//! ```
//! use simbench_core::bus::Bus;
//! use simbench_core::ir::MemSize;
//! use simbench_platform::{Platform, SAFEDEV_BASE, SAFEDEV_ID_VALUE};
//!
//! let mut p = Platform::with_ram(1 << 20);
//! let id = p.read(SAFEDEV_BASE, MemSize::B4).unwrap();
//! assert_eq!(id, SAFEDEV_ID_VALUE);
//! ```

pub mod devices;

use simbench_core::bus::{bus_error, ram_read, ram_write, Bus, BusEvent};
use simbench_core::fault::{AccessKind, MemFault};
use simbench_core::ir::MemSize;

use devices::{Ctl, Intc, SafeDev, Timer, Uart};

/// Base physical address of the device region.
pub const DEVICE_BASE: u32 = 0xF000_0000;
/// UART base.
pub const UART_BASE: u32 = 0xF000_0000;
/// Interrupt controller base.
pub const INTC_BASE: u32 = 0xF000_1000;
/// Timer base.
pub const TIMER_BASE: u32 = 0xF000_2000;
/// Safe (side-effect-free) device base.
pub const SAFEDEV_BASE: u32 = 0xF000_3000;
/// Benchmark control device base.
pub const CTL_BASE: u32 = 0xF000_4000;
/// One past the last device page.
pub const DEVICE_LIMIT: u32 = 0xF000_5000;

/// Value of the safe device's ID register.
pub const SAFEDEV_ID_VALUE: u32 = devices::SAFEDEV_ID;

/// Default RAM size: 96 MiB, enough for the suite's 16 MiB cold region,
/// page tables for both ISAs, and application heaps.
pub const DEFAULT_RAM: u32 = 96 << 20;

/// The platform: RAM plus devices, implementing [`Bus`].
#[derive(Debug)]
pub struct Platform {
    ram: Vec<u8>,
    /// Serial port.
    pub uart: Uart,
    /// Interrupt controller.
    pub intc: Intc,
    /// Free-running timer.
    pub timer: Timer,
    /// Side-effect-free benchmark device.
    pub safedev: SafeDev,
    /// Benchmark phase-control device.
    pub ctl: Ctl,
}

impl Platform {
    /// A platform with [`DEFAULT_RAM`] bytes of RAM.
    pub fn new() -> Self {
        Self::with_ram(DEFAULT_RAM as usize)
    }

    /// A platform with `ram_size` bytes of RAM.
    ///
    /// # Panics
    ///
    /// Panics if `ram_size` would overlap the device region.
    pub fn with_ram(ram_size: usize) -> Self {
        assert!(
            (ram_size as u64) <= DEVICE_BASE as u64,
            "RAM overlaps device region"
        );
        Platform {
            ram: vec![0; ram_size],
            uart: Uart::new(),
            intc: Intc::new(),
            timer: Timer::new(),
            safedev: SafeDev::new(),
            ctl: Ctl::new(),
        }
    }

    /// Text written by the guest to the UART so far.
    pub fn console(&self) -> &[u8] {
        self.uart.output()
    }

    fn device_read(&mut self, pa: u32, size: MemSize) -> Result<u32, MemFault> {
        let off = pa & 0xFFF;
        match pa & !0xFFF {
            UART_BASE => Ok(self.uart.read(off)),
            INTC_BASE => Ok(self.intc.read(off)),
            TIMER_BASE => Ok(self.timer.read(off)),
            SAFEDEV_BASE => Ok(self.safedev.read(off)),
            CTL_BASE => Ok(self.ctl.read(off)),
            _ => Err(bus_error(pa, AccessKind::Read)),
        }
        .map(|v| match size {
            MemSize::B1 => v & 0xFF,
            MemSize::B2 => v & 0xFFFF,
            MemSize::B4 => v,
        })
    }

    fn device_write(
        &mut self,
        pa: u32,
        val: u32,
        _size: MemSize,
    ) -> Result<Option<BusEvent>, MemFault> {
        let off = pa & 0xFFF;
        match pa & !0xFFF {
            UART_BASE => {
                self.uart.write(off, val);
                Ok(None)
            }
            INTC_BASE => {
                self.intc.write(off, val);
                Ok(Some(BusEvent::IrqLine))
            }
            TIMER_BASE => {
                self.timer.write(off, val);
                Ok(None)
            }
            SAFEDEV_BASE => {
                self.safedev.write(off, val);
                Ok(None)
            }
            CTL_BASE => Ok(self.ctl.write(off, val).map(BusEvent::PhaseMark)),
            _ => Err(bus_error(pa, AccessKind::Write)),
        }
    }
}

impl Default for Platform {
    fn default() -> Self {
        Self::new()
    }
}

impl Bus for Platform {
    fn ram(&self) -> &[u8] {
        &self.ram
    }

    fn ram_mut(&mut self) -> &mut [u8] {
        &mut self.ram
    }

    fn read(&mut self, pa: u32, size: MemSize) -> Result<u32, MemFault> {
        if (pa as u64) + size.bytes() as u64 <= self.ram.len() as u64 {
            Ok(ram_read(&self.ram, pa, size))
        } else if pa >= DEVICE_BASE {
            self.device_read(pa, size)
        } else {
            Err(bus_error(pa, AccessKind::Read))
        }
    }

    fn write(&mut self, pa: u32, val: u32, size: MemSize) -> Result<Option<BusEvent>, MemFault> {
        if (pa as u64) + size.bytes() as u64 <= self.ram.len() as u64 {
            ram_write(&mut self.ram, pa, val, size);
            Ok(None)
        } else if pa >= DEVICE_BASE {
            self.device_write(pa, val, size)
        } else {
            Err(bus_error(pa, AccessKind::Write))
        }
    }

    fn irq_pending(&self) -> bool {
        self.intc.line_asserted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use devices::{INTC_ACK, INTC_ENABLE, INTC_PENDING, INTC_TRIGGER};

    #[test]
    fn ram_read_write() {
        let mut p = Platform::with_ram(1 << 16);
        p.write(0x100, 0x1234_5678, MemSize::B4).unwrap();
        assert_eq!(p.read(0x100, MemSize::B4).unwrap(), 0x1234_5678);
        assert_eq!(p.read(0x100, MemSize::B1).unwrap(), 0x78);
    }

    #[test]
    fn hole_between_ram_and_devices_is_bus_error() {
        let mut p = Platform::with_ram(1 << 16);
        assert!(p.read(0x10_0000, MemSize::B4).is_err());
        assert!(p.write(0x10_0000, 0, MemSize::B4).is_err());
        assert!(p.read(DEVICE_LIMIT, MemSize::B4).is_err());
    }

    #[test]
    fn uart_collects_console_output() {
        let mut p = Platform::with_ram(4096);
        for b in b"hi" {
            p.write(UART_BASE, *b as u32, MemSize::B4).unwrap();
        }
        assert_eq!(p.console(), b"hi");
    }

    #[test]
    fn intc_software_interrupt_flow() {
        let mut p = Platform::with_ram(4096);
        assert!(!p.irq_pending());
        // Enable line 0 then trigger it.
        p.write(INTC_BASE + INTC_ENABLE, 1, MemSize::B4).unwrap();
        let ev = p.write(INTC_BASE + INTC_TRIGGER, 1, MemSize::B4).unwrap();
        assert_eq!(ev, Some(BusEvent::IrqLine));
        assert!(p.irq_pending());
        assert_eq!(p.read(INTC_BASE + INTC_PENDING, MemSize::B4).unwrap(), 1);
        // Ack clears.
        p.write(INTC_BASE + INTC_ACK, 1, MemSize::B4).unwrap();
        assert!(!p.irq_pending());
    }

    #[test]
    fn disabled_interrupt_does_not_assert_line() {
        let mut p = Platform::with_ram(4096);
        p.write(INTC_BASE + INTC_TRIGGER, 1, MemSize::B4).unwrap();
        assert!(!p.irq_pending(), "pending but masked");
        p.write(INTC_BASE + INTC_ENABLE, 1, MemSize::B4).unwrap();
        assert!(p.irq_pending(), "unmasking exposes pending");
    }

    #[test]
    fn timer_monotonic() {
        let mut p = Platform::with_ram(4096);
        let t1 = p.read(TIMER_BASE, MemSize::B4).unwrap();
        let t2 = p.read(TIMER_BASE, MemSize::B4).unwrap();
        assert!(t2 >= t1);
    }

    #[test]
    fn safedev_id_and_scratch() {
        let mut p = Platform::with_ram(4096);
        assert_eq!(p.read(SAFEDEV_BASE, MemSize::B4).unwrap(), SAFEDEV_ID_VALUE);
        p.write(SAFEDEV_BASE + 4, 0x77, MemSize::B4).unwrap();
        assert_eq!(p.read(SAFEDEV_BASE + 4, MemSize::B4).unwrap(), 0x77);
        // ID register is read-only.
        p.write(SAFEDEV_BASE, 0, MemSize::B4).unwrap();
        assert_eq!(p.read(SAFEDEV_BASE, MemSize::B4).unwrap(), SAFEDEV_ID_VALUE);
    }

    #[test]
    fn ctl_phase_marks() {
        let mut p = Platform::with_ram(4096);
        let ev = p.write(CTL_BASE, 1, MemSize::B4).unwrap();
        assert_eq!(ev, Some(BusEvent::PhaseMark(1)));
        let ev = p.write(CTL_BASE, 2, MemSize::B4).unwrap();
        assert_eq!(ev, Some(BusEvent::PhaseMark(2)));
    }

    #[test]
    fn narrow_device_reads_mask() {
        let mut p = Platform::with_ram(4096);
        let full = p.read(SAFEDEV_BASE, MemSize::B4).unwrap();
        assert_eq!(p.read(SAFEDEV_BASE, MemSize::B1).unwrap(), full & 0xFF);
        assert_eq!(p.read(SAFEDEV_BASE, MemSize::B2).unwrap(), full & 0xFFFF);
    }

    #[test]
    #[should_panic(expected = "overlaps device region")]
    fn oversized_ram_rejected() {
        let _ = Platform::with_ram(0xF800_0000);
    }
}

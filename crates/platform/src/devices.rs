//! The platform's memory-mapped devices.
//!
//! Register offsets are within each device's 4 KB page.

use std::time::Instant;

/// UART data register (write: transmit byte; read: 0).
pub const UART_DATA: u32 = 0x0;
/// UART status register (read: always ready).
pub const UART_STATUS: u32 = 0x4;

/// A write-only serial port capturing guest output for the host harness.
#[derive(Debug, Default)]
pub struct Uart {
    out: Vec<u8>,
}

impl Uart {
    /// New, empty UART.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes transmitted so far.
    pub fn output(&self) -> &[u8] {
        &self.out
    }

    /// Register read.
    pub fn read(&mut self, off: u32) -> u32 {
        match off {
            UART_STATUS => 1, // always ready to transmit
            _ => 0,
        }
    }

    /// Register write.
    pub fn write(&mut self, off: u32, val: u32) {
        if off == UART_DATA {
            self.out.push(val as u8);
        }
    }
}

/// INTC pending register (read-only).
pub const INTC_PENDING: u32 = 0x0;
/// INTC enable mask (read/write).
pub const INTC_ENABLE: u32 = 0x4;
/// INTC software trigger (write: OR bits into pending).
pub const INTC_TRIGGER: u32 = 0x8;
/// INTC acknowledge (write: clear pending bits).
pub const INTC_ACK: u32 = 0xC;

/// A 32-line interrupt controller with software-generated interrupts —
/// the mechanism behind the External Software Interrupt benchmark.
#[derive(Debug, Default)]
pub struct Intc {
    pending: u32,
    enable: u32,
}

impl Intc {
    /// New controller, all lines masked and clear.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when any enabled line is pending.
    pub fn line_asserted(&self) -> bool {
        self.pending & self.enable != 0
    }

    /// Register read.
    pub fn read(&mut self, off: u32) -> u32 {
        match off {
            INTC_PENDING => self.pending,
            INTC_ENABLE => self.enable,
            _ => 0,
        }
    }

    /// Register write.
    pub fn write(&mut self, off: u32, val: u32) {
        match off {
            INTC_ENABLE => self.enable = val,
            INTC_TRIGGER => self.pending |= val,
            INTC_ACK => self.pending &= !val,
            _ => {}
        }
    }
}

/// Timer nanoseconds, low word.
pub const TIMER_NS_LO: u32 = 0x0;
/// Timer nanoseconds, high word (latched by the preceding low-word read).
pub const TIMER_NS_HI: u32 = 0x4;

/// Free-running nanosecond timer backed by the host monotonic clock.
///
/// Reading `TIMER_NS_LO` latches the full 64-bit value so a subsequent
/// `TIMER_NS_HI` read is coherent.
#[derive(Debug)]
pub struct Timer {
    epoch: Instant,
    latched_hi: u32,
}

impl Timer {
    /// A timer starting now.
    pub fn new() -> Self {
        Timer {
            epoch: Instant::now(),
            latched_hi: 0,
        }
    }

    /// Register read.
    pub fn read(&mut self, off: u32) -> u32 {
        match off {
            TIMER_NS_LO => {
                let ns = self.epoch.elapsed().as_nanos() as u64;
                self.latched_hi = (ns >> 32) as u32;
                ns as u32
            }
            TIMER_NS_HI => self.latched_hi,
            _ => 0,
        }
    }

    /// Register write (ignored; the timer is read-only).
    pub fn write(&mut self, _off: u32, _val: u32) {}
}

impl Default for Timer {
    fn default() -> Self {
        Self::new()
    }
}

/// Safe device ID register offset.
pub const SAFEDEV_ID_REG: u32 = 0x0;
/// Safe device scratch register offset.
pub const SAFEDEV_SCRATCH: u32 = 0x4;
/// The constant device ID ("SB" + version), chosen to be non-zero and
/// non-trivial so engines cannot legally constant-fold it without
/// device-model knowledge.
pub const SAFEDEV_ID: u32 = 0x5342_0107;

/// The paper's "safe device": side-effect-free registers whose access
/// cost is exactly the platform's MMIO dispatch cost.
#[derive(Debug, Default)]
pub struct SafeDev {
    scratch: u32,
    accesses: u64,
}

impl SafeDev {
    /// New device.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of register accesses observed (diagnostics).
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Register read.
    pub fn read(&mut self, off: u32) -> u32 {
        self.accesses += 1;
        match off {
            SAFEDEV_ID_REG => SAFEDEV_ID,
            SAFEDEV_SCRATCH => self.scratch,
            _ => 0,
        }
    }

    /// Register write.
    pub fn write(&mut self, off: u32, val: u32) {
        self.accesses += 1;
        if off == SAFEDEV_SCRATCH {
            self.scratch = val;
        }
    }
}

/// Control device phase register: the guest writes 1 when its timed
/// kernel begins and 2 when it ends.
pub const CTL_PHASE: u32 = 0x0;
/// Control device result register: benchmarks may deposit a checksum the
/// harness can read back.
pub const CTL_RESULT: u32 = 0x4;

/// Benchmark phase-control device.
#[derive(Debug, Default)]
pub struct Ctl {
    result: u32,
    marks: Vec<u8>,
}

impl Ctl {
    /// New control device.
    pub fn new() -> Self {
        Self::default()
    }

    /// Phase marks written so far.
    pub fn marks(&self) -> &[u8] {
        &self.marks
    }

    /// The guest-deposited result value.
    pub fn result(&self) -> u32 {
        self.result
    }

    /// Register read.
    pub fn read(&mut self, off: u32) -> u32 {
        match off {
            CTL_RESULT => self.result,
            _ => 0,
        }
    }

    /// Register write. Returns the phase mark to surface as a bus event.
    pub fn write(&mut self, off: u32, val: u32) -> Option<u8> {
        match off {
            CTL_PHASE => {
                let m = val as u8;
                self.marks.push(m);
                Some(m)
            }
            CTL_RESULT => {
                self.result = val;
                None
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uart_transmit() {
        let mut u = Uart::new();
        u.write(UART_DATA, b'x' as u32);
        u.write(UART_DATA, b'y' as u32);
        assert_eq!(u.output(), b"xy");
        assert_eq!(u.read(UART_STATUS), 1);
    }

    #[test]
    fn intc_mask_semantics() {
        let mut i = Intc::new();
        i.write(INTC_TRIGGER, 0b101);
        assert_eq!(i.read(INTC_PENDING), 0b101);
        assert!(!i.line_asserted());
        i.write(INTC_ENABLE, 0b001);
        assert!(i.line_asserted());
        i.write(INTC_ACK, 0b001);
        assert_eq!(i.read(INTC_PENDING), 0b100);
        assert!(!i.line_asserted());
    }

    #[test]
    fn timer_latch_coherent() {
        let mut t = Timer::new();
        let lo = t.read(TIMER_NS_LO);
        let hi = t.read(TIMER_NS_HI);
        let total = ((hi as u64) << 32) | lo as u64;
        assert!(
            total < 60_000_000_000,
            "fresh timer should read well under a minute"
        );
    }

    #[test]
    fn safedev_counts_accesses() {
        let mut d = SafeDev::new();
        assert_eq!(d.read(SAFEDEV_ID_REG), SAFEDEV_ID);
        d.write(SAFEDEV_SCRATCH, 5);
        assert_eq!(d.read(SAFEDEV_SCRATCH), 5);
        assert_eq!(d.accesses(), 3);
    }

    #[test]
    fn ctl_records_marks_and_result() {
        let mut c = Ctl::new();
        assert_eq!(c.write(CTL_PHASE, 1), Some(1));
        assert_eq!(c.write(CTL_RESULT, 42), None);
        assert_eq!(c.write(CTL_PHASE, 2), Some(2));
        assert_eq!(c.marks(), &[1, 2]);
        assert_eq!(c.result(), 42);
        assert_eq!(c.read(CTL_RESULT), 42);
    }
}

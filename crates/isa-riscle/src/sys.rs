//! riscle system state: CSRs and exception entry/exit.

use simbench_core::cpu::{CpuState, Flags, Privilege, Status};
use simbench_core::fault::{CopFault, ExcInfo, ExceptionKind};
use simbench_core::isa::CopEffect;

/// CSR indices (accessed via `csrr`/`csrw`; riscle has a single system
/// coprocessor, number 0).
pub mod csr {
    /// System control: bit 0 enables paging.
    pub const CTRL: u8 = 0;
    /// Page-table base (4 KB aligned, like `satp`).
    pub const TTB: u8 = 1;
    /// Vector table base (like `stvec`).
    pub const TVEC: u8 = 2;
    /// Fault address (set on aborts, like `stval`).
    pub const TVAL: u8 = 3;
    /// Architecture id — a read-only constant, the designated
    /// side-effect-free "safe" system-register read for the Coprocessor
    /// Access benchmark. Writes fault.
    pub const MISA: u8 = 4;
    /// Write: flush the entire TLB (`sfence.vma` with no address).
    pub const TLB_FLUSH: u8 = 7;
    /// Write: invalidate the TLB entry covering the written address
    /// (`sfence.vma` with an address).
    pub const TLB_INV: u8 = 8;
    /// Banked return address (like `sepc`).
    pub const SAVED_PC: u8 = 10;
    /// Banked status word (like `sstatus`).
    pub const SAVED_STATUS: u8 = 11;
    /// Bit 0: IRQ enable for the current status.
    pub const IRQ_CTL: u8 = 12;
    /// Handler scratch register (like `sscratch`).
    pub const SCRATCH: u8 = 13;
}

/// The MISA constant: XLEN 32 (bit 30) with the I and C extension
/// letters set.
pub const MISA_VALUE: u32 = (1 << 30) | (1 << 8) | (1 << 2);

/// Spacing of vector table entries in bytes.
pub const VECTOR_STRIDE: u32 = 0x20;

/// riscle system-register file.
#[derive(Debug, Clone, Default)]
pub struct RiscleSys {
    /// System control (bit 0: paging enable).
    pub ctrl: u32,
    /// Page-table base (4 KB aligned).
    pub ttb: u32,
    /// Vector base.
    pub tvec: u32,
    /// Fault address.
    pub tval: u32,
    /// Banked return address.
    pub saved_pc: u32,
    /// Banked status.
    pub saved_status: Status,
    /// Handler scratch.
    pub scratch: u32,
}

impl RiscleSys {
    /// True when paging is enabled.
    pub fn paging_enabled(&self) -> bool {
        self.ctrl & 1 != 0
    }

    /// Encode a [`Status`] into the CSR word format (same layout as the
    /// armlet and petix status words, so the differ can compare them).
    pub fn encode_status(s: Status) -> u32 {
        (s.flags.n as u32) << 31
            | (s.flags.z as u32) << 30
            | (s.flags.c as u32) << 29
            | (s.flags.v as u32) << 28
            | (s.irq_enabled as u32) << 7
            | ((s.level == Privilege::User) as u32) << 4
    }

    fn decode_status(w: u32) -> Status {
        Status {
            flags: Flags {
                n: w & (1 << 31) != 0,
                z: w & (1 << 30) != 0,
                c: w & (1 << 29) != 0,
                v: w & (1 << 28) != 0,
            },
            irq_enabled: w & (1 << 7) != 0,
            level: if w & (1 << 4) != 0 {
                Privilege::User
            } else {
                Privilege::Kernel
            },
        }
    }

    /// CSR read.
    ///
    /// # Errors
    ///
    /// [`CopFault`] for nonexistent registers or a coprocessor other
    /// than 0.
    pub fn cop_read(&mut self, cp: u8, reg: u8) -> Result<u32, CopFault> {
        if cp != 0 {
            return Err(CopFault);
        }
        match reg {
            csr::CTRL => Ok(self.ctrl),
            csr::TTB => Ok(self.ttb),
            csr::TVEC => Ok(self.tvec),
            csr::TVAL => Ok(self.tval),
            csr::MISA => Ok(MISA_VALUE),
            csr::SAVED_PC => Ok(self.saved_pc),
            csr::SAVED_STATUS => Ok(Self::encode_status(self.saved_status)),
            csr::SCRATCH => Ok(self.scratch),
            _ => Err(CopFault),
        }
    }

    /// CSR write.
    ///
    /// # Errors
    ///
    /// [`CopFault`] for nonexistent or read-only registers ([`csr::MISA`]).
    pub fn cop_write(
        &mut self,
        cpu: &mut CpuState,
        cp: u8,
        reg: u8,
        val: u32,
    ) -> Result<CopEffect, CopFault> {
        if cp != 0 {
            return Err(CopFault);
        }
        match reg {
            csr::CTRL => {
                let was = self.ctrl;
                self.ctrl = val;
                Ok(if (was ^ val) & 1 != 0 {
                    CopEffect::ContextChanged
                } else {
                    CopEffect::None
                })
            }
            csr::TTB => {
                self.ttb = val;
                // satp semantics: changing the root pointer invalidates
                // cached translations.
                Ok(CopEffect::ContextChanged)
            }
            csr::TVEC => {
                self.tvec = val;
                Ok(CopEffect::None)
            }
            csr::TLB_FLUSH => Ok(CopEffect::TlbFlush),
            csr::TLB_INV => Ok(CopEffect::TlbInvPage(val)),
            csr::SAVED_PC => {
                self.saved_pc = val;
                Ok(CopEffect::None)
            }
            csr::SAVED_STATUS => {
                self.saved_status = Self::decode_status(val);
                Ok(CopEffect::None)
            }
            csr::IRQ_CTL => {
                cpu.irq_enabled = val & 1 != 0;
                Ok(CopEffect::None)
            }
            csr::SCRATCH => {
                self.scratch = val;
                Ok(CopEffect::None)
            }
            _ => Err(CopFault),
        }
    }

    /// Take an exception: bank pc and status, drop to kernel with IRQs
    /// masked, record the fault address for aborts, and return the
    /// handler address.
    pub fn enter_exception(
        &mut self,
        cpu: &mut CpuState,
        kind: ExceptionKind,
        info: ExcInfo,
        return_pc: u32,
    ) -> u32 {
        self.saved_pc = return_pc;
        self.saved_status = cpu.status();
        if matches!(
            kind,
            ExceptionKind::DataAbort | ExceptionKind::PrefetchAbort
        ) {
            self.tval = info.fault_addr;
        }
        cpu.level = Privilege::Kernel;
        cpu.irq_enabled = false;
        self.tvec + VECTOR_STRIDE * kind.vector_index() as u32
    }

    /// Return from exception.
    pub fn leave_exception(&mut self, cpu: &mut CpuState) -> u32 {
        cpu.restore_status(self.saved_status);
        self.saved_pc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misa_is_readonly_constant() {
        let mut sys = RiscleSys::default();
        let mut cpu = CpuState::at_reset(0);
        assert_eq!(sys.cop_read(0, csr::MISA).unwrap(), MISA_VALUE);
        assert!(sys.cop_write(&mut cpu, 0, csr::MISA, 0).is_err());
    }

    #[test]
    fn ttb_flushes_context() {
        let mut sys = RiscleSys::default();
        let mut cpu = CpuState::at_reset(0);
        assert_eq!(
            sys.cop_write(&mut cpu, 0, csr::TTB, 0x8000).unwrap(),
            CopEffect::ContextChanged
        );
        assert_eq!(
            sys.cop_write(&mut cpu, 0, csr::TLB_INV, 0x1234).unwrap(),
            CopEffect::TlbInvPage(0x1234)
        );
        assert_eq!(
            sys.cop_write(&mut cpu, 0, csr::TLB_FLUSH, 0).unwrap(),
            CopEffect::TlbFlush
        );
    }

    #[test]
    fn paging_toggle_changes_context() {
        let mut sys = RiscleSys::default();
        let mut cpu = CpuState::at_reset(0);
        assert_eq!(
            sys.cop_write(&mut cpu, 0, csr::CTRL, 1).unwrap(),
            CopEffect::ContextChanged
        );
        assert_eq!(
            sys.cop_write(&mut cpu, 0, csr::CTRL, 3).unwrap(),
            CopEffect::None,
            "non-paging bits do not flush"
        );
    }

    #[test]
    fn wrong_coprocessor_faults() {
        let mut sys = RiscleSys::default();
        assert!(sys.cop_read(1, csr::CTRL).is_err());
        assert!(sys.cop_read(0, 15).is_err());
    }

    #[test]
    fn exception_cycle() {
        let mut sys = RiscleSys {
            tvec: 0x1000,
            ..Default::default()
        };
        let mut cpu = CpuState::at_reset(0x8000);
        cpu.irq_enabled = true;
        let vec = sys.enter_exception(
            &mut cpu,
            ExceptionKind::PrefetchAbort,
            ExcInfo {
                fault_addr: 0xBAD0_0000,
                syscall_no: 0,
            },
            0xBAD0_0000,
        );
        assert_eq!(vec, 0x1000 + VECTOR_STRIDE * 3);
        assert_eq!(sys.tval, 0xBAD0_0000);
        assert!(!cpu.irq_enabled);
        // The handler redirects the resume point past the faulting
        // instruction (ResumeFromLink-style recovery).
        sys.cop_write(&mut cpu, 0, csr::SAVED_PC, 0x8004).unwrap();
        assert_eq!(sys.leave_exception(&mut cpu), 0x8004);
        assert!(cpu.irq_enabled);
    }
}

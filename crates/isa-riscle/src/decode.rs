//! riscle decoder: 16/32-bit halfword parcels → micro-op IR.
//!
//! The decoder body and the length rule are generated from the
//! declarative encoding spec in `spec/riscle.isa` by `simbench-isa-spec`
//! (committed as `src/decode_gen.rs`); this module is the stable public
//! surface. riscle was born with a generated decoder — there is no
//! hand-written reference, its behaviour is pinned by the exhaustive
//! first-halfword sweep in `crates/analyzer/tests/decode_sweep.rs`.

use simbench_core::ir::{DecodeError, Decoded};

/// Total byte length of the instruction whose first halfword is `h0`:
/// 4 when the low two bits are `0b11` (RISC-V-C style), else 2.
///
/// Total over all halfwords — whenever [`decode`] succeeds on a buffer
/// starting with `h0`, the decoded `len` equals this value and `decode`
/// never reads past it. (The length being defined does not promise the
/// instruction decodes: reserved quadrants and bad condition codes
/// still reject.)
pub const fn insn_len(h0: u16) -> usize {
    crate::decode_gen::insn_len(h0)
}

/// Decode one instruction starting at `bytes[0]` (the byte at `pc`).
///
/// # Errors
///
/// [`DecodeError`] for invalid encodings *or* when `bytes` is too short
/// to hold the full instruction (engines retry with more bytes across
/// page boundaries before treating the error as undefined).
#[inline]
pub fn decode(bytes: &[u8], pc: u32) -> Result<Decoded, DecodeError> {
    crate::decode_gen::decode(bytes, pc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding as enc;
    use crate::encoding::{LR, SP};
    use simbench_core::ir::{AluOp, Cond, LinkKind, MemSize, Op, Operand, RetKind};

    fn dec32(w: u32) -> Decoded {
        decode(&w.to_le_bytes(), 0x8000).unwrap()
    }

    fn dec16(h: u16) -> Decoded {
        decode(&h.to_le_bytes(), 0x8000).unwrap()
    }

    #[test]
    fn wide_system_forms() {
        assert_eq!(dec32(enc::svc(42)).ops, vec![Op::Svc(42)]);
        assert_eq!(dec32(enc::eret()).ops, vec![Op::Eret]);
        assert_eq!(dec32(enc::halt()).ops, vec![Op::Halt]);
        assert_eq!(dec32(enc::nop32()).ops, vec![Op::Nop]);
        assert_eq!(
            dec32(enc::csrr(3, 0, 4)).ops,
            vec![Op::CopRead {
                cp: 0,
                reg: 4,
                rd: 3
            }]
        );
        assert_eq!(
            dec32(enc::csrw(5, 0, 1)).ops,
            vec![Op::CopWrite {
                cp: 0,
                reg: 1,
                rs: 5
            }]
        );
    }

    #[test]
    fn li_pair_builds_constants() {
        let d = dec32(enc::li(3, 0xBEEF));
        assert_eq!(
            d.ops,
            vec![Op::Alu {
                op: AluOp::Mov,
                rd: 3,
                rn: 0,
                src: Operand::Imm(0xBEEF),
                set_flags: false
            }]
        );
        let d = dec32(enc::lih(3, 0xDEAD));
        assert_eq!(d.ops.len(), 2);
        assert_eq!(
            d.ops[1],
            Op::Alu {
                op: AluOp::Orr,
                rd: 3,
                rn: 3,
                src: Operand::Imm(0xDEAD_0000),
                set_flags: false
            }
        );
    }

    #[test]
    fn alu_forms_are_three_address() {
        let d = dec32(enc::alu_rr(AluOp::Eor, 3, 4, 5));
        assert_eq!(
            d.ops,
            vec![Op::Alu {
                op: AluOp::Eor,
                rd: 3,
                rn: 4,
                src: Operand::Reg(5),
                set_flags: false
            }]
        );
        let d = dec32(enc::alu_ri(AluOp::Add, 6, 7, 0xFFF));
        assert_eq!(
            d.ops,
            vec![Op::Alu {
                op: AluOp::Add,
                rd: 6,
                rn: 7,
                src: Operand::Imm(0xFFF),
                set_flags: false
            }]
        );
    }

    #[test]
    fn memory_forms() {
        let d = dec32(enc::ldst(true, enc::Width::Word, 3, 4, -8));
        assert_eq!(
            d.ops,
            vec![Op::Load {
                rd: 3,
                base: 4,
                off: -8,
                size: MemSize::B4,
                nonpriv: false
            }]
        );
        let d = dec32(enc::ldst(false, enc::Width::Byte, 5, 6, 7));
        assert_eq!(
            d.ops,
            vec![Op::Store {
                rs: 5,
                base: 6,
                off: 7,
                size: MemSize::B1,
                nonpriv: false
            }]
        );
        // Size code 3 is reserved.
        let bad = 0b11 | (0x04 << 2) | (3 << 15);
        assert!(decode(&(bad as u32).to_le_bytes(), 0).is_err());
    }

    #[test]
    fn branch_targets() {
        let d = decode(&enc::b(0x8000, 0x8100).to_le_bytes(), 0x8000).unwrap();
        assert_eq!(d.ops, vec![Op::Branch { target: 0x8100 }]);
        let d = decode(&enc::b_cond(Cond::Lt, 0x8000, 0x7F00).to_le_bytes(), 0x8000).unwrap();
        assert_eq!(
            d.ops,
            vec![Op::BranchCond {
                cond: Cond::Lt,
                target: 0x7F00
            }]
        );
        let d = decode(&enc::jal(0x8000, 0x9000).to_le_bytes(), 0x8000).unwrap();
        assert_eq!(
            d.ops,
            vec![Op::Call {
                target: 0x9000,
                ret: 0x8004,
                link: LinkKind::Register(LR)
            }]
        );
    }

    #[test]
    fn compressed_forms() {
        assert_eq!(dec16(enc::C_UDF).ops, vec![Op::Udf]);
        assert_eq!(dec16(enc::c_nop()).ops, vec![Op::Nop]);
        let d = dec16(enc::c_mv(3, 4));
        assert_eq!(
            d.ops,
            vec![Op::Alu {
                op: AluOp::Mov,
                rd: 3,
                rn: 0,
                src: Operand::Reg(4),
                set_flags: false
            }]
        );
        let d = dec16(enc::c_add(5, 6));
        assert!(matches!(
            d.ops[0],
            Op::Alu {
                op: AluOp::Add,
                rd: 5,
                rn: 5,
                ..
            }
        ));
        let d = dec16(enc::c_li(7, -3));
        assert_eq!(
            d.ops,
            vec![Op::Alu {
                op: AluOp::Mov,
                rd: 7,
                rn: 0,
                src: Operand::Imm(0xFFFF_FFFD),
                set_flags: false
            }]
        );
        let d = dec16(enc::c_b(0x8000, 0x8010));
        assert_eq!(d.len, 2);
        assert_eq!(d.ops, vec![Op::Branch { target: 0x8010 }]);
    }

    #[test]
    fn jr_through_link_register_is_return() {
        assert_eq!(
            dec16(enc::c_jr(LR)).ops,
            vec![Op::Ret(RetKind::Register(LR))]
        );
        assert_eq!(dec16(enc::c_jr(SP)).ops, vec![Op::BranchReg { rm: SP }]);
        let d = dec16(enc::c_jalr(3));
        assert_eq!(
            d.ops,
            vec![Op::CallReg {
                rm: 3,
                ret: 0x8002,
                link: LinkKind::Register(LR)
            }]
        );
    }

    #[test]
    fn truncated_buffers_error() {
        let wide = enc::alu_ri(AluOp::Add, 3, 3, 1).to_le_bytes();
        for n in 0..4 {
            assert!(decode(&wide[..n], 0).is_err(), "truncated to {n} bytes");
        }
        assert!(decode(&wide, 0).is_ok());
        let narrow = enc::c_nop().to_le_bytes();
        for n in 0..2 {
            assert!(decode(&narrow[..n], 0).is_err(), "truncated to {n} bytes");
        }
        assert!(decode(&narrow, 0).is_ok());
    }

    #[test]
    fn smc_word_is_harmless_li_r8() {
        for imm in [0u32, 0xBEEF] {
            let word = enc::SMC_NOP_WORD | (imm << 16);
            let d = decode(&word.to_le_bytes(), 0).unwrap();
            assert_eq!(d.len, 4);
            assert_eq!(
                d.ops,
                vec![Op::Alu {
                    op: AluOp::Mov,
                    rd: 8,
                    rn: 0,
                    src: Operand::Imm(imm),
                    set_flags: false
                }]
            );
        }
    }

    #[test]
    fn length_table_matches_decoder() {
        // Mirror of petix's length-table consistency test: whenever a
        // halfword-led buffer decodes, the decoded length must equal
        // the table's answer, and reserved encodings must reject.
        let fills: [u16; 4] = [0x0000, 0xFFFF, 0x5A5A, 0x8421];
        for h0 in 0..=0xFFFFu16 {
            for fill in fills {
                let word = ((fill as u32) << 16) | h0 as u32;
                if let Ok(d) = decode(&word.to_le_bytes(), 0) {
                    assert_eq!(d.len as usize, insn_len(h0), "h0 {h0:#06x}");
                }
            }
        }
        // Quadrant 2 is entirely reserved.
        for f3 in 0..8u16 {
            let h = (f3 << 13) | 2;
            assert!(decode(&h.to_le_bytes(), 0).is_err(), "quadrant 2 f3={f3}");
        }
    }

    #[test]
    fn invalid_encodings_error() {
        // op5 values with no encoding group.
        for op5 in [0x08u32, 0x09, 0x0C, 0x10, 0x1F] {
            let w = 0b11 | (op5 << 2);
            assert!(decode(&w.to_le_bytes(), 0).is_err(), "op5 {op5:#x}");
        }
        // Bad condition code (Cond::from_code(15) is None).
        let w = 0b11 | (0x07 << 2) | (15 << 7);
        assert!(decode(&(w as u32).to_le_bytes(), 0).is_err());
        // System sub-codes past csrw.
        for sub in [6u32, 7, 15] {
            let w = 0b11 | (0x0A << 2) | (sub << 7);
            assert!(decode(&w.to_le_bytes(), 0).is_err(), "sys sub {sub}");
        }
    }
}

//! riscle assembler: implements the portable interface plus
//! architecture-specific extensions used by the riscle support package.
//!
//! riscle ALU register forms are natively three-address, so no lowering
//! is needed there; the assembler's per-architecture work is on the
//! other side: it picks compressed 16-bit encodings (`c.mv`, `c.add`,
//! `c.sub`, `c.nop`, `c.jr`, `c.jalr`, small `c.li`) whenever one
//! expresses the portable operation, so every benchmark image exercises
//! the variable-width fetch path.

use simbench_core::asm::{AsmBuffer, Label, PReg, PortableAsm};
use simbench_core::image::GuestImage;
use simbench_core::ir::{AluOp, Cond};

use crate::encoding as enc;

/// Map a portable register onto a riscle GPR: `A`–`F` → r3–r8 (r8 is
/// the self-modifying-code landing register), `Lr` → r1, `Sp` → r2.
/// r0 is an ordinary scratch register left to handlers.
pub fn reg(r: PReg) -> u8 {
    match r {
        PReg::A => 3,
        PReg::B => 4,
        PReg::C => 5,
        PReg::D => 6,
        PReg::E => 7,
        PReg::F => 8,
        PReg::Sp => enc::SP,
        PReg::Lr => enc::LR,
    }
}

#[derive(Debug, Clone, Copy)]
enum Fix {
    /// `b`/`jal` at `at`: patch the simm25 halfword field `[31:7]`.
    Rel25,
    /// `b<cond>` at `at`: patch the simm21 halfword field `[31:11]`.
    Rel21,
    /// `li`+`lih` pair at `at`: patch both 16-bit immediates.
    AbsPair,
}

/// The riscle assembler.
#[derive(Debug, Default)]
pub struct RiscleAsm {
    buf: AsmBuffer,
    fixups: Vec<(u32, Label, Fix)>,
}

impl RiscleAsm {
    /// A fresh assembler; call [`PortableAsm::org`] before emitting.
    pub fn new() -> Self {
        Self::default()
    }

    fn emit32(&mut self, w: u32) {
        self.buf.emit(&w.to_le_bytes());
    }

    fn emit16(&mut self, h: u16) {
        self.buf.emit(&h.to_le_bytes());
    }

    /// `rd = rn` (register move, raw register numbers).
    pub fn mov_rr_raw(&mut self, rd: u8, rn: u8) {
        self.emit16(enc::c_mv(rd, rn));
    }

    /// `rd = rn` (register move).
    pub fn mov_rr(&mut self, rd: PReg, rn: PReg) {
        self.mov_rr_raw(reg(rd), reg(rn));
    }

    /// Read a system register: `rd = csr`.
    pub fn csrr(&mut self, rd: PReg, csr: u8) {
        self.emit32(enc::csrr(reg(rd), 0, csr));
    }

    /// Write a system register: `csr = rs`.
    pub fn csrw(&mut self, csr: u8, rs: PReg) {
        self.emit32(enc::csrw(reg(rs), 0, csr));
    }

    /// Halfword load.
    pub fn load16(&mut self, rd: PReg, base: PReg, off: i32) {
        self.emit32(enc::ldst(true, enc::Width::Half, reg(rd), reg(base), off));
    }

    /// Halfword store.
    pub fn store16(&mut self, rs: PReg, base: PReg, off: i32) {
        self.emit32(enc::ldst(false, enc::Width::Half, reg(rs), reg(base), off));
    }
}

impl PortableAsm for RiscleAsm {
    fn here(&self) -> u32 {
        self.buf.here()
    }
    fn org(&mut self, addr: u32) {
        self.buf.org(addr);
    }
    fn align(&mut self, align: u32) {
        self.buf.align(align);
    }
    fn skip(&mut self, n: u32) {
        self.buf.skip(n);
    }
    fn word(&mut self, w: u32) {
        self.buf.emit_u32(w);
    }
    fn bytes(&mut self, data: &[u8]) {
        self.buf.emit(data);
    }
    fn new_label(&mut self) -> Label {
        self.buf.new_label()
    }
    fn bind(&mut self, l: Label) {
        self.buf.bind(l);
    }
    fn label_addr(&self, l: Label) -> Option<u32> {
        self.buf.label_addr(l)
    }

    fn mov_imm(&mut self, rd: PReg, imm: u32) {
        let rd = reg(rd);
        if (imm as i32) >= -32 && (imm as i32) < 32 {
            self.emit16(enc::c_li(rd, imm as i32));
        } else if imm <= 0xFFFF {
            self.emit32(enc::li(rd, imm as u16));
        } else {
            self.emit32(enc::li(rd, imm as u16));
            self.emit32(enc::lih(rd, (imm >> 16) as u16));
        }
    }

    fn mov_label(&mut self, rd: PReg, l: Label) {
        // Fixed-size li+lih pair so the fixup never changes layout.
        let at = self.here();
        let rd = reg(rd);
        self.emit32(enc::li(rd, 0));
        self.emit32(enc::lih(rd, 0));
        self.fixups.push((at, l, Fix::AbsPair));
    }

    fn alu_rr(&mut self, op: AluOp, rd: PReg, rn: PReg, rm: PReg) {
        let (rd, rn, rm) = (reg(rd), reg(rn), reg(rm));
        match op {
            AluOp::Mov => self.emit16(enc::c_mv(rd, rm)),
            AluOp::Add if rd == rn => self.emit16(enc::c_add(rd, rm)),
            AluOp::Sub if rd == rn => self.emit16(enc::c_sub(rd, rm)),
            _ => self.emit32(enc::alu_rr(op, rd, rn, rm)),
        }
    }

    fn alu_ri(&mut self, op: AluOp, rd: PReg, rn: PReg, imm: u32) {
        self.emit32(enc::alu_ri(op, reg(rd), reg(rn), imm));
    }

    fn cmp_ri(&mut self, rn: PReg, imm: u32) {
        self.emit32(enc::cmp_ri(reg(rn), imm));
    }

    fn cmp_rr(&mut self, rn: PReg, rm: PReg) {
        self.emit32(enc::cmp_rr(reg(rn), reg(rm)));
    }

    fn load(&mut self, rd: PReg, base: PReg, off: i32) {
        self.emit32(enc::ldst(true, enc::Width::Word, reg(rd), reg(base), off));
    }

    fn store(&mut self, rs: PReg, base: PReg, off: i32) {
        self.emit32(enc::ldst(false, enc::Width::Word, reg(rs), reg(base), off));
    }

    fn load8(&mut self, rd: PReg, base: PReg, off: i32) {
        self.emit32(enc::ldst(true, enc::Width::Byte, reg(rd), reg(base), off));
    }

    fn store8(&mut self, rs: PReg, base: PReg, off: i32) {
        self.emit32(enc::ldst(false, enc::Width::Byte, reg(rs), reg(base), off));
    }

    fn b(&mut self, l: Label) {
        let at = self.here();
        self.emit32(enc::b(at, at.wrapping_add(4)));
        self.fixups.push((at, l, Fix::Rel25));
    }

    fn b_cond(&mut self, c: Cond, l: Label) {
        let at = self.here();
        self.emit32(enc::b_cond(c, at, at.wrapping_add(4)));
        self.fixups.push((at, l, Fix::Rel21));
    }

    fn br_reg(&mut self, r: PReg) {
        self.emit16(enc::c_jr(reg(r)));
    }

    fn call(&mut self, l: Label) {
        let at = self.here();
        self.emit32(enc::jal(at, at.wrapping_add(4)));
        self.fixups.push((at, l, Fix::Rel25));
    }

    fn call_reg(&mut self, r: PReg) {
        self.emit16(enc::c_jalr(reg(r)));
    }

    fn ret(&mut self) {
        self.emit16(enc::c_jr(enc::LR));
    }

    fn svc(&mut self, imm: u16) {
        self.emit32(enc::svc(imm));
    }

    fn udf(&mut self) {
        self.emit16(enc::C_UDF);
    }

    fn eret(&mut self) {
        self.emit32(enc::eret());
    }

    fn halt(&mut self) {
        self.emit32(enc::halt());
    }

    fn nop(&mut self) {
        self.emit16(enc::c_nop());
    }

    fn emit_smc_word(&mut self, rd: PReg, riter: PReg) {
        // rd = (riter << 16) | the `li r8, #imm16` base encoding.
        if rd != riter {
            self.mov_rr(rd, riter);
        }
        self.alu_ri(AluOp::Lsl, rd, rd, 16);
        self.alu_ri(AluOp::Orr, rd, rd, enc::SMC_NOP_WORD);
    }

    fn smc_nop_word(&self) -> u32 {
        enc::SMC_NOP_WORD
    }

    fn finish(mut self, entry: u32) -> GuestImage {
        for (at, label, fix) in std::mem::take(&mut self.fixups) {
            let target = self
                .buf
                .label_addr(label)
                .unwrap_or_else(|| panic!("unbound label {label:?} referenced at {at:#x}"));
            match fix {
                Fix::Rel25 => {
                    let w = self.buf.read_u32_at(at) & 0x7F;
                    // Re-encode through the range-checked helpers; the
                    // opcode bits are preserved from the placeholder.
                    let patched = if (w >> 2) & 0x1F == 0x05 {
                        crate::encoding::b(at, target)
                    } else {
                        crate::encoding::jal(at, target)
                    };
                    self.buf.write_u32_at(at, patched);
                }
                Fix::Rel21 => {
                    let w = self.buf.read_u32_at(at);
                    let delta = target.wrapping_sub(at.wrapping_add(4)) as i32;
                    assert_eq!(delta & 1, 0, "odd riscle branch target");
                    let off = delta >> 1;
                    assert!(
                        (-(1 << 20)..(1 << 20)).contains(&off),
                        "riscle b<cond> fixup out of range at {at:#x}"
                    );
                    self.buf
                        .write_u32_at(at, (w & 0x7FF) | (((off as u32) & 0x1F_FFFF) << 11));
                }
                Fix::AbsPair => {
                    let lo = self.buf.read_u32_at(at) & 0xFFFF;
                    let hi = self.buf.read_u32_at(at + 4) & 0xFFFF;
                    self.buf.write_u32_at(at, lo | (target << 16));
                    self.buf.write_u32_at(at + 4, hi | (target & 0xFFFF_0000));
                }
            }
        }
        self.buf.into_image(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;
    use simbench_core::ir::{Op, Operand};

    fn section_bytes(img: &GuestImage, addr: u32) -> &[u8] {
        let s = img
            .sections
            .iter()
            .find(|s| s.addr <= addr && addr < s.end())
            .unwrap();
        &s.bytes[(addr - s.addr) as usize..]
    }

    #[test]
    fn forward_jump_fixup() {
        let mut a = RiscleAsm::new();
        a.org(0x8000);
        let l = a.new_label();
        a.b(l);
        a.nop();
        a.bind(l);
        a.halt();
        let img = a.finish(0x8000);
        let d = decode(section_bytes(&img, 0x8000), 0x8000).unwrap();
        assert_eq!(d.ops, vec![Op::Branch { target: 0x8006 }]);
    }

    #[test]
    fn call_and_label_fixups() {
        let mut a = RiscleAsm::new();
        a.org(0x8000);
        let f = a.new_label();
        let data = a.new_label();
        a.call(f);
        a.mov_label(PReg::A, data);
        a.halt();
        a.bind(f);
        a.ret();
        a.align(4);
        a.bind(data);
        a.word(0x1234_5678);
        let img = a.finish(0x8000);
        let d = decode(section_bytes(&img, 0x8000), 0x8000).unwrap();
        assert!(matches!(d.ops[0], Op::Call { ret: 0x8004, .. }));
        // The li half of the pair at 0x8004 carries the low half of the
        // bound address of `data`.
        let addr = img.sections[0].bytes.len() as u32 + 0x8000 - 4;
        let d = decode(section_bytes(&img, 0x8004), 0x8004).unwrap();
        assert!(
            matches!(d.ops[0], Op::Alu { src: Operand::Imm(v), .. } if v == (addr & 0xFFFF)),
            "li immediate should hold the data address low half"
        );
    }

    #[test]
    fn compressed_forms_are_two_bytes() {
        let mut a = RiscleAsm::new();
        a.org(0);
        a.nop(); // 2
        a.mov_imm(PReg::A, 5); // 2 (c.li)
        a.alu_rr(AluOp::Mov, PReg::B, PReg::B, PReg::A); // 2 (c.mv)
        a.alu_rr(AluOp::Add, PReg::A, PReg::A, PReg::B); // 2 (c.add)
        a.alu_rr(AluOp::Eor, PReg::A, PReg::B, PReg::C); // 4 (three-address)
        a.ret(); // 2
        let img = a.finish(0);
        assert_eq!(img.sections[0].bytes.len(), 2 + 2 + 2 + 2 + 4 + 2);
    }

    #[test]
    fn mov_imm_picks_shortest_form() {
        for (imm, len) in [(0u32, 2), (31, 2), (32, 4), (0xFFFF, 4), (0x1_0000, 8)] {
            let mut a = RiscleAsm::new();
            a.org(0x100);
            a.mov_imm(PReg::A, imm);
            let img = a.finish(0x100);
            assert_eq!(img.sections[0].bytes.len(), len, "imm {imm:#x}");
            // And the sequence reproduces the value when interpreted.
            let bytes = &img.sections[0].bytes;
            let mut pc = 0usize;
            let mut val = 0u32;
            while pc < bytes.len() {
                let d = decode(&bytes[pc..], pc as u32).unwrap();
                for op in &d.ops {
                    if let Op::Alu { op, src, .. } = op {
                        val = match (op, src) {
                            (AluOp::Mov, Operand::Imm(v)) => *v,
                            (AluOp::And, Operand::Imm(v)) => val & v,
                            (AluOp::Orr, Operand::Imm(v)) => val | v,
                            _ => panic!("unexpected op in mov_imm expansion"),
                        };
                    }
                }
                pc += d.len as usize;
            }
            assert_eq!(val, imm, "imm {imm:#x}");
        }
    }

    #[test]
    fn smc_sequence_decodes() {
        let mut a = RiscleAsm::new();
        a.org(0);
        a.emit_smc_word(PReg::A, PReg::B);
        let img = a.finish(0);
        let bytes = &img.sections[0].bytes;
        // c.mv(2) + lsl ri(4) + orr ri(4).
        assert_eq!(bytes.len(), 10);
        let mut pc = 0usize;
        while pc < bytes.len() {
            let d = decode(&bytes[pc..], pc as u32).unwrap();
            pc += d.len as usize;
        }
    }

    #[test]
    fn negative_mov_imm_uses_wide_pair() {
        // 0xFFFF_FFFF is c.li -1 territory? No: mov_imm treats imm as
        // unsigned, and c.li sign-extends — only values whose sign
        // extension reproduces them may use it.
        let mut a = RiscleAsm::new();
        a.org(0);
        a.mov_imm(PReg::A, 0xFFFF_FFFF);
        let img = a.finish(0);
        assert_eq!(img.sections[0].bytes.len(), 2, "-1 round-trips via c.li");
        let d = decode(&img.sections[0].bytes, 0).unwrap();
        assert!(matches!(
            d.ops[0],
            Op::Alu {
                src: Operand::Imm(0xFFFF_FFFF),
                ..
            }
        ));
    }
}

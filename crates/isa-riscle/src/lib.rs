//! # simbench-isa-riscle
//!
//! The `riscle` guest architecture: a RISC-V-flavoured ISA with mixed
//! 16/32-bit instructions (RVC-style length encoding: the low two bits
//! of the first halfword select the parcel count). Sixteen GPRs with a
//! link register, CSR-style system registers behind a single
//! coprocessor, an sv32-flavoured two-level MMU with leaf-only
//! permissions, and `sfence.vma`-style TLB maintenance expressed as CSR
//! writes. Like petix it has no non-privileged load/store forms, so the
//! corresponding SimBench benchmark is skipped on this guest.
//!
//! riscle is the first guest whose decoder was *born* generated: there
//! is no hand-written reference decoder, only the declarative spec in
//! `spec/riscle.isa` and the `simbench-isa-spec` output committed as
//! [`decode_gen`]. Its variable-width fetch path (compressed forms
//! interleaved with 32-bit ones) exercises the engines' halfword-led
//! instruction-length handling that the fixed-width armlet and
//! byte-led petix cannot.
//!
//! ## Example
//!
//! ```
//! use simbench_core::asm::{PReg, PortableAsm};
//! use simbench_core::isa::Isa;
//! use simbench_isa_riscle::{Riscle, RiscleAsm};
//!
//! let mut a = RiscleAsm::new();
//! a.org(0x8000);
//! a.mov_imm(PReg::A, 7); // fits the compressed c.li form
//! a.alu_ri(simbench_core::ir::AluOp::Add, PReg::A, PReg::A, 1);
//! a.halt();
//! let image = a.finish(0x8000);
//! let first = Riscle::decode(&image.sections[0].bytes, 0x8000).unwrap();
//! assert_eq!(first.len, 2);
//! ```

pub mod asm;
pub mod decode;
pub mod decode_gen;
pub mod encoding;
pub mod mmu;
pub mod sys;

pub use asm::RiscleAsm;
pub use mmu::{PtFlags, TableBuilder};
pub use sys::RiscleSys;

use simbench_core::bus::Bus;
use simbench_core::cpu::CpuState;
use simbench_core::fault::{CopFault, ExcInfo, ExceptionKind};
use simbench_core::ir::{DecodeError, Decoded};
use simbench_core::isa::{CopEffect, Isa};
use simbench_core::mmu::WalkResult;

/// The riscle architecture (implements [`Isa`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Riscle;

impl Isa for Riscle {
    const NAME: &'static str = "riscle";
    const MAX_INSN_BYTES: usize = 4;
    const GPRS: usize = 16;
    type Sys = RiscleSys;

    fn decode(bytes: &[u8], pc: u32) -> Result<Decoded, DecodeError> {
        decode::decode(bytes, pc)
    }

    fn mmu_enabled(sys: &Self::Sys) -> bool {
        sys.paging_enabled()
    }

    fn walk<B: Bus>(sys: &Self::Sys, bus: &mut B, va: u32) -> WalkResult {
        mmu::walk(sys, bus, va)
    }

    fn cop_read(_cpu: &CpuState, sys: &mut Self::Sys, cp: u8, reg: u8) -> Result<u32, CopFault> {
        sys.cop_read(cp, reg)
    }

    fn cop_write(
        cpu: &mut CpuState,
        sys: &mut Self::Sys,
        cp: u8,
        reg: u8,
        val: u32,
    ) -> Result<CopEffect, CopFault> {
        sys.cop_write(cpu, cp, reg, val)
    }

    fn enter_exception(
        cpu: &mut CpuState,
        sys: &mut Self::Sys,
        kind: ExceptionKind,
        info: ExcInfo,
        return_pc: u32,
    ) -> u32 {
        sys.enter_exception(cpu, kind, info, return_pc)
    }

    fn leave_exception(cpu: &mut CpuState, sys: &mut Self::Sys) -> u32 {
        sys.leave_exception(cpu)
    }

    fn sys_regs(sys: &Self::Sys, visit: &mut dyn FnMut(&'static str, u32)) {
        visit("ctrl", sys.ctrl);
        visit("ttb", sys.ttb);
        visit("tvec", sys.tvec);
        visit("tval", sys.tval);
        visit("saved_pc", sys.saved_pc);
        visit("saved_status", RiscleSys::encode_status(sys.saved_status));
        visit("scratch", sys.scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isa_constants() {
        assert_eq!(Riscle::NAME, "riscle");
        assert_eq!(Riscle::MAX_INSN_BYTES, 4);
        assert_eq!(Riscle::GPRS, 16);
    }
}

//! riscle instruction encodings.
//!
//! riscle is a RISC-V-flavoured load/store architecture with compressed
//! instructions: code is a stream of little-endian 16-bit parcels, and
//! the low two bits of the first parcel select the length class —
//! `0b11` opens a 32-bit instruction, anything else is a 16-bit
//! compressed form. Sixteen GPRs; r1 is the link register (`jal` links
//! there, RISC-V `ra` style) and r2 the stack pointer, both
//! software-managed. System state lives behind `csrr`/`csrw` (see
//! [`crate::sys`]). Like petix, riscle has **no** non-privileged
//! load/store forms: the corresponding SimBench benchmark is a no-op
//! here.
//!
//! 32-bit forms (dispatch `op5` = bits `[6:2]`, `rd`/`sub` in `[10:7]`):
//!
//! | op5 | Form |
//! |-----|------|
//! | `0x00` | `li rd, #imm16` (`[31:16]`, zeroes the upper half) |
//! | `0x01` | `lih rd, #imm16` (replaces the upper half) |
//! | `0x02` | ALU rr: `rn[14:11] rm[18:15] funct4[22:19] S[23]` |
//! | `0x03` | ALU ri: `rn[14:11] funct4[18:15] S[19] imm12[31:20]` |
//! | `0x04` | load/store: `base[14:11] sz[16:15] L[17] simm12[31:20]` |
//! | `0x05` | `b` — simm25 `[31:7]` halfwords from pc+4 |
//! | `0x06` | `jal` — same displacement, links r1 |
//! | `0x07` | `b<cond>` — cond `[10:7]`, simm21 `[31:11]` halfwords |
//! | `0x0A` | system: sub 0 `svc`, 1 `eret`, 2 `halt`, 3 `nop`, 4 `csrr`, 5 `csrw` |
//! | `0x0B` | compares: sub 0 `cmp rr`, 1 `cmp ri`, 2 `tst rr`, 3 `tst ri` |
//!
//! 16-bit forms (funct3 = `[15:13]`, quadrant = `[1:0]`, regs `[12:9]`
//! and `[8:5]`): quadrant 0 holds `c.udf` (the all-zero halfword),
//! `c.mv`, `c.add`, `c.sub`, `c.li` (simm6 `[7:2]`) and `c.nop`;
//! quadrant 1 holds `c.b` (simm11 `[12:2]` halfwords), `c.jr` /
//! `c.jalr`; quadrant 2 is reserved.

use simbench_core::ir::{AluOp, Cond};

/// Longest riscle instruction in bytes.
pub const MAX_INSN_BYTES: usize = 4;

/// Stack-pointer register (software convention, RISC-V `sp`).
pub const SP: u8 = 2;
/// Link register (`jal`/`c.jalr` link here, RISC-V `ra`).
pub const LR: u8 = 1;

/// The canonical undefined instruction: the all-zero halfword, so
/// falling into zeroed memory faults immediately.
pub const C_UDF: u16 = 0x0000;

/// The 4-byte self-modifying-code filler, as a little-endian word:
/// `li r8, #imm16`. OR the iteration count's low 16 bits into the top
/// half for a fresh valid encoding each time (r8 is the `PReg::F`
/// landing register, mirroring armlet's `movw r5` and petix's
/// `mov16 r5`).
pub const SMC_NOP_WORD: u32 = 0x0000_0403;

const fn w32(op5: u32, rd: u8) -> u32 {
    0b11 | (op5 << 2) | ((rd as u32 & 0xF) << 7)
}

/// `li rd, #imm16` — rd = imm (upper half zeroed).
pub const fn li(rd: u8, imm: u16) -> u32 {
    w32(0x00, rd) | ((imm as u32) << 16)
}

/// `lih rd, #imm16` — replace rd's upper half, keep the lower.
pub const fn lih(rd: u8, imm: u16) -> u32 {
    w32(0x01, rd) | ((imm as u32) << 16)
}

/// Three-address ALU register form: `rd = rn <op> rm`.
pub fn alu_rr(op: AluOp, rd: u8, rn: u8, rm: u8) -> u32 {
    w32(0x02, rd)
        | ((rn as u32 & 0xF) << 11)
        | ((rm as u32 & 0xF) << 15)
        | ((op.code() as u32) << 19)
}

/// ALU immediate form: `rd = rn <op> imm12` (zero-extended).
///
/// # Panics
///
/// Panics if `imm` exceeds 12 bits.
pub fn alu_ri(op: AluOp, rd: u8, rn: u8, imm: u32) -> u32 {
    assert!(
        imm <= 0xFFF,
        "riscle ALU immediate {imm:#x} exceeds 12 bits"
    );
    w32(0x03, rd) | ((rn as u32 & 0xF) << 11) | ((op.code() as u32) << 15) | (imm << 20)
}

/// Memory access width selector for [`ldst`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Width {
    /// 32-bit.
    Word,
    /// 8-bit.
    Byte,
    /// 16-bit.
    Half,
}

/// Load/store with a signed 12-bit displacement.
///
/// # Panics
///
/// Panics if `disp` exceeds ±2047.
pub fn ldst(load: bool, width: Width, r: u8, base: u8, disp: i32) -> u32 {
    assert!(
        (-2048..=2047).contains(&disp),
        "riscle displacement {disp} exceeds 12 bits"
    );
    let sz = match width {
        Width::Word => 0,
        Width::Byte => 1,
        Width::Half => 2,
    };
    w32(0x04, r)
        | ((base as u32 & 0xF) << 11)
        | (sz << 15)
        | ((load as u32) << 17)
        | (((disp as u32) & 0xFFF) << 20)
}

const fn fits_signed(v: i32, bits: u32) -> bool {
    let half = 1i32 << (bits - 1);
    v >= -half && v < half
}

/// Halfword displacement from the end of a 4-byte instruction at `pc`
/// to `target`.
///
/// # Panics
///
/// Panics on odd targets.
fn hw_off(pc: u32, target: u32) -> i32 {
    let delta = target.wrapping_sub(pc.wrapping_add(4)) as i32;
    assert_eq!(
        delta & 1,
        0,
        "riscle branch target must be halfword aligned"
    );
    delta >> 1
}

/// `b target` — unconditional direct branch.
///
/// # Panics
///
/// Panics if the displacement exceeds 25 bits of halfwords.
pub fn b(pc: u32, target: u32) -> u32 {
    let off = hw_off(pc, target);
    assert!(fits_signed(off, 25), "riscle b displacement out of range");
    w32(0x05, 0) | (((off as u32) & 0x1FF_FFFF) << 7)
}

/// `jal target` — direct call, links r1.
///
/// # Panics
///
/// Panics if the displacement exceeds 25 bits of halfwords.
pub fn jal(pc: u32, target: u32) -> u32 {
    let off = hw_off(pc, target);
    assert!(fits_signed(off, 25), "riscle jal displacement out of range");
    w32(0x06, 0) | (((off as u32) & 0x1FF_FFFF) << 7)
}

/// `b<cond> target`.
///
/// # Panics
///
/// Panics if the displacement exceeds 21 bits of halfwords.
pub fn b_cond(cond: Cond, pc: u32, target: u32) -> u32 {
    let off = hw_off(pc, target);
    assert!(
        fits_signed(off, 21),
        "riscle b<cond> displacement out of range"
    );
    w32(0x07, cond.code()) | (((off as u32) & 0x1F_FFFF) << 11)
}

/// `svc #imm16` — system call.
pub const fn svc(imm: u16) -> u32 {
    w32(0x0A, 0) | ((imm as u32) << 16)
}

/// `eret` — return from exception.
pub const fn eret() -> u32 {
    w32(0x0A, 1)
}

/// `halt` — stop the machine.
pub const fn halt() -> u32 {
    w32(0x0A, 2)
}

/// 32-bit `nop` (the compressed [`c_nop`] is what the assembler emits).
pub const fn nop32() -> u32 {
    w32(0x0A, 3)
}

/// `csrr rt, cp, csr` — read a system register.
pub const fn csrr(rt: u8, cp: u8, csr: u8) -> u32 {
    w32(0x0A, 4)
        | ((rt as u32 & 0xF) << 11)
        | ((cp as u32 & 0xF) << 15)
        | ((csr as u32 & 0xF) << 19)
}

/// `csrw rt, cp, csr` — write a system register.
pub const fn csrw(rt: u8, cp: u8, csr: u8) -> u32 {
    w32(0x0A, 5)
        | ((rt as u32 & 0xF) << 11)
        | ((cp as u32 & 0xF) << 15)
        | ((csr as u32 & 0xF) << 19)
}

/// `cmp rn, rm`.
pub const fn cmp_rr(rn: u8, rm: u8) -> u32 {
    w32(0x0B, 0) | ((rn as u32 & 0xF) << 11) | ((rm as u32 & 0xF) << 15)
}

/// `cmp rn, #imm12`.
///
/// # Panics
///
/// Panics if `imm` exceeds 12 bits.
pub fn cmp_ri(rn: u8, imm: u32) -> u32 {
    assert!(
        imm <= 0xFFF,
        "riscle compare immediate {imm:#x} exceeds 12 bits"
    );
    w32(0x0B, 1) | ((rn as u32 & 0xF) << 11) | (imm << 20)
}

/// `tst rn, rm`.
pub const fn tst_rr(rn: u8, rm: u8) -> u32 {
    w32(0x0B, 2) | ((rn as u32 & 0xF) << 11) | ((rm as u32 & 0xF) << 15)
}

/// `tst rn, #imm12`.
///
/// # Panics
///
/// Panics if `imm` exceeds 12 bits.
pub fn tst_ri(rn: u8, imm: u32) -> u32 {
    assert!(
        imm <= 0xFFF,
        "riscle test immediate {imm:#x} exceeds 12 bits"
    );
    w32(0x0B, 3) | ((rn as u32 & 0xF) << 11) | (imm << 20)
}

const fn c16(f3: u16, quadrant: u16) -> u16 {
    (f3 << 13) | quadrant
}

/// `c.mv rd, rs` — rd = rs.
pub const fn c_mv(rd: u8, rs: u8) -> u16 {
    c16(1, 0) | ((rd as u16 & 0xF) << 9) | ((rs as u16 & 0xF) << 5)
}

/// `c.add rd, rs` — rd = rd + rs.
pub const fn c_add(rd: u8, rs: u8) -> u16 {
    c16(2, 0) | ((rd as u16 & 0xF) << 9) | ((rs as u16 & 0xF) << 5)
}

/// `c.sub rd, rs` — rd = rd - rs.
pub const fn c_sub(rd: u8, rs: u8) -> u16 {
    c16(3, 0) | ((rd as u16 & 0xF) << 9) | ((rs as u16 & 0xF) << 5)
}

/// `c.li rd, #simm6`.
///
/// # Panics
///
/// Panics if `imm` exceeds ±31.
pub fn c_li(rd: u8, imm: i32) -> u16 {
    assert!(
        fits_signed(imm, 6),
        "riscle c.li immediate {imm} exceeds 6 bits"
    );
    c16(4, 0) | ((rd as u16 & 0xF) << 9) | (((imm as u16) & 0x3F) << 2)
}

/// `c.nop`.
pub const fn c_nop() -> u16 {
    c16(5, 0)
}

/// `c.b target` — compressed unconditional branch.
///
/// # Panics
///
/// Panics if the displacement exceeds 11 bits of halfwords.
pub fn c_b(pc: u32, target: u32) -> u16 {
    let delta = target.wrapping_sub(pc.wrapping_add(2)) as i32;
    assert_eq!(
        delta & 1,
        0,
        "riscle branch target must be halfword aligned"
    );
    let off = delta >> 1;
    assert!(fits_signed(off, 11), "riscle c.b displacement out of range");
    c16(0, 1) | (((off as u16) & 0x7FF) << 2)
}

/// `c.jr rm` — indirect branch (through r1 it decodes as a return).
pub const fn c_jr(rm: u8) -> u16 {
    c16(1, 1) | ((rm as u16 & 0xF) << 9)
}

/// `c.jalr rm` — indirect call, links r1.
pub const fn c_jalr(rm: u8) -> u16 {
    c16(2, 1) | ((rm as u16 & 0xF) << 9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_classes() {
        // All 32-bit forms open with 0b11; no compressed form does.
        for w in [
            li(1, 0),
            lih(1, 0),
            alu_rr(AluOp::Add, 1, 2, 3),
            alu_ri(AluOp::Add, 1, 2, 3),
            ldst(true, Width::Word, 1, 2, -4),
            b(0, 0x100),
            jal(0, 0x100),
            b_cond(Cond::Eq, 0, 0x100),
            svc(7),
            eret(),
            halt(),
            nop32(),
            csrr(1, 0, 2),
            csrw(1, 0, 2),
            cmp_rr(1, 2),
            cmp_ri(1, 3),
            tst_rr(1, 2),
            tst_ri(1, 3),
        ] {
            assert_eq!(w & 3, 3, "{w:#010x}");
        }
        for h in [
            C_UDF,
            c_mv(1, 2),
            c_add(1, 2),
            c_sub(1, 2),
            c_li(1, -5),
            c_nop(),
            c_b(0, 0x10),
            c_jr(3),
            c_jalr(3),
        ] {
            assert_ne!(h & 3, 3, "{h:#06x}");
        }
    }

    #[test]
    fn smc_word_matches_li_r8() {
        assert_eq!(li(8, 0), SMC_NOP_WORD);
    }

    #[test]
    fn branch_displacements_round_trip() {
        // b at pc=0x100 to 0x100 → off = -2 halfwords.
        let w = b(0x100, 0x100);
        let off = ((w >> 7) as i32) << 7 >> 7; // sign-extend 25 bits
        assert_eq!(off, -2);
        let w = b_cond(Cond::Lt, 0x8000, 0x7F00);
        let off = ((w >> 11) as i32) << 11 >> 11;
        assert_eq!(off, (0x7F00i32 - 0x8004) / 2);
    }

    #[test]
    #[should_panic(expected = "exceeds 12 bits")]
    fn huge_displacement_rejected() {
        ldst(true, Width::Word, 0, 0, 4000);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn compressed_branch_range_enforced() {
        c_b(0, 0x10000);
    }
}

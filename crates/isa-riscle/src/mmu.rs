//! riscle MMU: an sv32-flavoured two-level page-table walk (1024-entry
//! root table of 4 MB regions, 1024-entry leaf tables of 4 KB pages),
//! plus a host-side table builder.
//!
//! Unlike petix's x86-style walk, permissions live entirely in the leaf
//! PTE (R/W/X/U bits, RISC-V style); non-leaf entries are bare pointers
//! with only the valid bit set. Like the petix walker it is much
//! simpler than armlet's two-format walk with domains — the paper's
//! observation about QEMU's "quite complex" ARM lookups versus simpler
//! MMU models holds across all three guests.

use simbench_core::bus::Bus;
use simbench_core::fault::{AccessKind, FaultKind, MemFault};
use simbench_core::ir::MemSize;
use simbench_core::mmu::{Perms, TlbEntry, WalkResult};
use simbench_core::{page_of, PAGE_SHIFT};

use crate::sys::RiscleSys;

const P_VALID: u32 = 1 << 0;
const P_READ: u32 = 1 << 1;
const P_WRITE: u32 = 1 << 2;
const P_EXEC: u32 = 1 << 3;
const P_USER: u32 = 1 << 4;

fn fault(va: u32, kind: FaultKind) -> MemFault {
    MemFault {
        addr: va,
        access: AccessKind::Read,
        kind,
    }
}

/// Walk the riscle page tables for `va`.
///
/// # Errors
///
/// Not-present faults ([`FaultKind::Unmapped`]) and walk bus errors.
pub fn walk<B: Bus>(sys: &RiscleSys, bus: &mut B, va: u32) -> WalkResult {
    let root = sys.ttb & !0xFFF;
    let l1_index = va >> 22;
    let pde = bus
        .read(root + l1_index * 4, MemSize::B4)
        .map_err(|_| fault(va, FaultKind::BusError))?;
    if pde & P_VALID == 0 {
        return Err(fault(va, FaultKind::Unmapped));
    }
    let table = pde & !0xFFF;
    let l2_index = (va >> PAGE_SHIFT) & 0x3FF;
    let pte = bus
        .read(table + l2_index * 4, MemSize::B4)
        .map_err(|_| fault(va, FaultKind::BusError))?;
    if pte & P_VALID == 0 {
        return Err(fault(va, FaultKind::Unmapped));
    }

    // Leaf-only permissions, RISC-V style.
    let perms = Perms {
        r: pte & P_READ != 0,
        w: pte & P_WRITE != 0,
        x: pte & P_EXEC != 0,
    };
    let user = if pte & P_USER != 0 {
        perms
    } else {
        Perms::NONE
    };

    Ok(TlbEntry {
        vpage: page_of(va),
        ppage: pte >> PAGE_SHIFT,
        user,
        kernel: perms,
    })
}

/// Mapping attributes for the table builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PtFlags {
    /// Writable.
    pub write: bool,
    /// Accessible from user mode.
    pub user: bool,
    /// Never executable.
    pub nx: bool,
}

impl PtFlags {
    /// Kernel read/write/execute, no user access.
    pub const KERNEL: PtFlags = PtFlags {
        write: true,
        user: false,
        nx: false,
    };
    /// Full access from both modes.
    pub const USER_FULL: PtFlags = PtFlags {
        write: true,
        user: true,
        nx: false,
    };
    /// Read-only at both levels.
    pub const READ_ONLY: PtFlags = PtFlags {
        write: false,
        user: true,
        nx: false,
    };
    /// Kernel data only (no execute).
    pub const KERNEL_DEVICE: PtFlags = PtFlags {
        write: true,
        user: false,
        nx: true,
    };

    fn bits(self) -> u32 {
        P_VALID
            | P_READ
            | if self.write { P_WRITE } else { 0 }
            | if self.user { P_USER } else { 0 }
            | if self.nx { 0 } else { P_EXEC }
    }
}

/// Builds riscle page tables as a flat blob: the root table occupies
/// the first 4 KB at `base`; leaf tables are appended.
#[derive(Debug)]
pub struct TableBuilder {
    base: u32,
    blob: Vec<u8>,
    table_of: Vec<Option<u32>>,
}

impl TableBuilder {
    /// Start building at physical `base` (4 KB aligned).
    ///
    /// # Panics
    ///
    /// Panics on misalignment.
    pub fn new(base: u32) -> Self {
        assert_eq!(base & 0xFFF, 0, "TTB base must be 4 KB aligned");
        TableBuilder {
            base,
            blob: vec![0; 4096],
            table_of: vec![None; 1024],
        }
    }

    /// The TTB value for these tables.
    pub fn ttb(&self) -> u32 {
        self.base
    }

    fn write_u32(&mut self, addr: u32, val: u32) {
        let off = (addr - self.base) as usize;
        self.blob[off..off + 4].copy_from_slice(&val.to_le_bytes());
    }

    fn table_for(&mut self, va: u32) -> u32 {
        let idx = (va >> 22) as usize;
        if let Some(addr) = self.table_of[idx] {
            return addr;
        }
        let addr = self.base + self.blob.len() as u32;
        self.blob.extend(std::iter::repeat_n(0, 4096));
        self.table_of[idx] = Some(addr);
        // Non-leaf entries are bare pointers: valid bit only.
        self.write_u32(self.base + (idx as u32) * 4, (addr & !0xFFF) | P_VALID);
        addr
    }

    /// Map one 4 KB page.
    ///
    /// # Panics
    ///
    /// Panics on misaligned addresses.
    pub fn map_page(&mut self, va: u32, pa: u32, flags: PtFlags) {
        assert_eq!(va & 0xFFF, 0);
        assert_eq!(pa & 0xFFF, 0);
        let table = self.table_for(va);
        let index = (va >> PAGE_SHIFT) & 0x3FF;
        self.write_u32(table + index * 4, (pa & !0xFFF) | flags.bits());
    }

    /// Map `len` bytes (rounded up to pages) from `va` to `pa`.
    pub fn map_range(&mut self, va: u32, pa: u32, len: u32, flags: PtFlags) {
        let pages = len.next_multiple_of(1 << PAGE_SHIFT) >> PAGE_SHIFT;
        for i in 0..pages {
            self.map_page(va + (i << PAGE_SHIFT), pa + (i << PAGE_SHIFT), flags);
        }
    }

    /// Finish: `(load address, table bytes)`.
    pub fn into_blob(self) -> (u32, Vec<u8>) {
        (self.base, self.blob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbench_core::bus::FlatRam;

    const TBASE: u32 = 0x10_0000;

    fn setup(build: impl FnOnce(&mut TableBuilder)) -> (RiscleSys, FlatRam) {
        let mut tb = TableBuilder::new(TBASE);
        build(&mut tb);
        let (base, blob) = tb.into_blob();
        let mut ram = FlatRam::new(8 << 20);
        ram.ram_mut()[base as usize..base as usize + blob.len()].copy_from_slice(&blob);
        let sys = RiscleSys {
            ttb: base,
            ctrl: 1,
            ..Default::default()
        };
        (sys, ram)
    }

    #[test]
    fn basic_translation() {
        let (sys, mut ram) = setup(|tb| tb.map_page(0x40_0000, 0x1000, PtFlags::USER_FULL));
        let e = walk(&sys, &mut ram, 0x40_0ABC).unwrap();
        assert_eq!(e.translate(0x40_0ABC), 0x1ABC);
        assert!(e.user.w && e.kernel.w && e.user.x);
    }

    #[test]
    fn not_present_faults() {
        let (sys, mut ram) = setup(|tb| tb.map_page(0x40_0000, 0x1000, PtFlags::USER_FULL));
        assert_eq!(
            walk(&sys, &mut ram, 0x40_1000).unwrap_err().kind,
            FaultKind::Unmapped
        );
        assert_eq!(
            walk(&sys, &mut ram, 0x80_0000).unwrap_err().kind,
            FaultKind::Unmapped
        );
    }

    #[test]
    fn kernel_only_and_nx() {
        let (sys, mut ram) = setup(|tb| {
            tb.map_page(0x40_0000, 0x1000, PtFlags::KERNEL);
            tb.map_page(0x40_1000, 0x2000, PtFlags::KERNEL_DEVICE);
            tb.map_page(0x40_2000, 0x3000, PtFlags::READ_ONLY);
        });
        let e = walk(&sys, &mut ram, 0x40_0000).unwrap();
        assert_eq!(e.user, Perms::NONE);
        assert!(e.kernel.w && e.kernel.x);
        let e = walk(&sys, &mut ram, 0x40_1000).unwrap();
        assert!(e.kernel.w && !e.kernel.x, "NX strips execute");
        let e = walk(&sys, &mut ram, 0x40_2000).unwrap();
        assert!(!e.kernel.w && e.user.r && !e.user.w);
    }

    #[test]
    fn map_range_spans_directories() {
        // Map 8 MB: crosses a 4 MB root-entry boundary → two tables.
        let (sys, mut ram) =
            setup(|tb| tb.map_range(0x40_0000, 0x40_0000, 8 << 20, PtFlags::KERNEL));
        assert!(walk(&sys, &mut ram, 0x40_0000).is_ok());
        assert!(walk(&sys, &mut ram, 0x7F_F000).is_ok());
        assert!(walk(&sys, &mut ram, 0xBF_F000).is_ok());
        assert!(walk(&sys, &mut ram, 0xC0_0000).is_err());
    }

    #[test]
    fn walk_outside_ram_is_bus_error() {
        let sys = RiscleSys {
            ttb: 0x70_0000,
            ctrl: 1,
            ..Default::default()
        };
        let mut ram = FlatRam::new(1 << 20);
        assert_eq!(
            walk(&sys, &mut ram, 0x1000).unwrap_err().kind,
            FaultKind::BusError
        );
    }
}

//! Differential property test: random straight-line guest programs
//! produce identical architectural state on every engine — the
//! cross-engine consistency the paper relies on when comparing
//! simulators on the same binaries.

use proptest::prelude::*;
use simbench::prelude::*;
use simbench_core::engine::RunLimits;
use simbench_core::ir::{AluOp, Cond};

#[derive(Debug, Clone)]
enum Step {
    MovImm(u8, u32),
    AluRi(u8, u8, u8, u32),
    AluRr(u8, u8, u8, u8),
    CmpRi(u8, u32),
    CondSkip(u8),
    Store(u8, i32),
    Load(u8, i32),
}

const REGS: [PReg; 5] = [PReg::A, PReg::B, PReg::C, PReg::D, PReg::E];

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..5, any::<u32>()).prop_map(|(r, v)| Step::MovImm(r, v)),
        (0u8..16, 0u8..5, 0u8..5, 0u32..4096).prop_map(|(o, d, n, i)| Step::AluRi(o, d, n, i)),
        (0u8..16, 0u8..5, 0u8..5, 0u8..5).prop_map(|(o, d, n, m)| Step::AluRr(o, d, n, m)),
        (0u8..5, 0u32..4096).prop_map(|(r, i)| Step::CmpRi(r, i)),
        (0u8..15).prop_map(Step::CondSkip),
        (0u8..5, 0i32..64).prop_map(|(r, o)| Step::Store(r, o * 4)),
        (0u8..5, 0i32..64).prop_map(|(r, o)| Step::Load(r, o * 4)),
    ]
}

fn assemble(steps: &[Step]) -> simbench_core::image::GuestImage {
    let mut a = ArmletAsm::new();
    a.org(0x8000);
    // F holds a valid data pointer for loads/stores.
    a.mov_imm(PReg::F, 0x0020_0000);
    for s in steps {
        match *s {
            Step::MovImm(r, v) => a.mov_imm(REGS[r as usize], v),
            Step::AluRi(op, d, n, i) => a.alu_ri(
                simbench_core::ir::AluOp::from_code(op).unwrap(),
                REGS[d as usize],
                REGS[n as usize],
                i,
            ),
            Step::AluRr(op, d, n, m) => a.alu_rr(
                AluOp::from_code(op).unwrap(),
                REGS[d as usize],
                REGS[n as usize],
                REGS[m as usize],
            ),
            Step::CmpRi(r, i) => a.cmp_ri(REGS[r as usize], i),
            Step::CondSkip(c) => {
                // A conditional branch over one instruction: exercises
                // taken and untaken paths depending on accumulated flags.
                let l = a.new_label();
                a.b_cond(Cond::from_code(c).unwrap(), l);
                a.alu_ri(AluOp::Eor, PReg::A, PReg::A, 0x5A5);
                a.bind(l);
            }
            Step::Store(r, off) => a.store(REGS[r as usize], PReg::F, off),
            Step::Load(r, off) => a.load(REGS[r as usize], PReg::F, off),
        }
    }
    a.halt();
    a.finish(0x8000)
}

fn final_state(image: &simbench_core::image::GuestImage, which: u8) -> ([u32; 16], bool) {
    let mut m = Machine::<Armlet, _>::boot(image, Platform::new());
    let limits = RunLimits::insns(100_000);
    let out = match which {
        0 => Interp::<Armlet>::new().run(&mut m, &limits),
        1 => Dbt::<Armlet>::new().run(&mut m, &limits),
        2 => Dbt::<Armlet>::with_profile(simbench_dbt::QEMU_VERSIONS[0]).run(&mut m, &limits),
        3 => Virt::<Armlet>::native().run(&mut m, &limits),
        _ => Detailed::<Armlet>::new().run(&mut m, &limits),
    };
    (m.cpu.regs, out.exit == ExitReason::Halted)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn engines_agree_on_random_programs(steps in prop::collection::vec(step_strategy(), 1..40)) {
        let image = assemble(&steps);
        let (reference, halted) = final_state(&image, 0);
        prop_assert!(halted, "interp must halt");
        for which in 1..=4u8 {
            let (state, halted) = final_state(&image, which);
            prop_assert!(halted, "engine {which} must halt");
            prop_assert_eq!(state, reference, "engine {} diverged", which);
        }
    }

    // The same strategy through the lockstep checker: full state-digest
    // equality (registers, flags, system registers, all of RAM) rather
    // than the register-file spot check above, with any mismatch
    // bisected to the first divergent instruction in the report.
    #[test]
    fn differ_agrees_interp_vs_native(steps in prop::collection::vec(step_strategy(), 1..40)) {
        let image = assemble(&steps);
        let cfg = simbench_differ::DifferConfig {
            max_insns: 100_000,
            checkpoints: 4,
            scale: 20_000,
        };
        let report = simbench_differ::lockstep::<Armlet>(
            &image,
            simbench_campaign::EngineKind::Interp,
            simbench_campaign::EngineKind::Native,
            &cfg,
            "prop",
        );
        prop_assert!(report.agree(), "{}", report.render());
    }
}

//! Allocation audit of the engine hot loops.
//!
//! A test-only counting `#[global_allocator]` wrapper proves the
//! PR-level claim behind `OpList`, the DBT step arena and the reusable
//! translation scratch buffer: once an engine is warm, executing guest
//! code touches the allocator **zero** times — decode, dispatch and
//! execute run entirely on inline storage and pre-grown capacity.
//!
//! The counter is thread-local: libtest's own harness threads (and any
//! concurrently running test) allocate at unpredictable times, and only
//! allocations made *by the measuring thread* are evidence about the
//! hot loop.
//!
//! Since the telemetry PR the engines are instrumented with
//! `simbench-obs` spans and metrics, so this test also pins the
//! observability contract both ways: compiled-in-but-disabled telemetry
//! changes none of the zero-allocation guarantees above (the disabled
//! path is one relaxed load + branch), and even *enabled* telemetry is
//! allocation-free once warm — rings are fixed-capacity and metric
//! registration happens exactly once.
//!
//! Everything lives in ONE sequential test function: the obs enable
//! flags are process-global, and a parallel test flipping them would
//! push another test's hot loop onto the (allocating) warm-up path.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use simbench_core::asm::{PReg, PortableAsm};
use simbench_core::bus::FlatRam;
use simbench_core::engine::{Engine, ExitReason, RunLimits, RunOutcome};
use simbench_core::image::GuestImage;
use simbench_core::ir::{AluOp, Cond};
use simbench_core::machine::Machine;
use simbench_dbt::Dbt;
use simbench_interp::Interp;
use simbench_isa_armlet::{Armlet, ArmletAsm};

/// Counts every allocation and reallocation made by the current
/// thread; frees are not interesting (a hot loop that frees must have
/// allocated first).
struct CountingAlloc;

thread_local! {
    // Const-initialized so reading it never allocates (a lazily
    // initialized TLS slot would recurse into the allocator).
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Bump the current thread's counter. `try_with`: the allocator also
/// runs during TLS teardown, when the slot is gone.
fn count_one() {
    let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.with(|c| c.get())
}

/// A hot loop exercising the full per-instruction path: ALU ops, a
/// store/load pair, a compare and a taken intra-page branch.
fn hot_loop_image(iters: u32) -> GuestImage {
    let mut a = ArmletAsm::new();
    a.org(0x8000);
    a.mov_imm(PReg::A, 0);
    a.mov_imm(PReg::B, iters);
    a.mov_imm(PReg::C, 0x4000);
    let top = a.new_label();
    a.bind(top);
    a.store(PReg::A, PReg::C, 0);
    a.load(PReg::D, PReg::C, 0);
    a.alu_ri(AluOp::Add, PReg::A, PReg::A, 1);
    a.alu_ri(AluOp::Sub, PReg::B, PReg::B, 1);
    a.cmp_ri(PReg::B, 0);
    a.b_cond(Cond::Ne, top);
    a.halt();
    a.finish(0x8000)
}

/// Run `engine` over a fresh machine (booted outside the measured
/// window) and return the allocation count of the run itself.
fn measured_run<E: Engine<Armlet, FlatRam>>(engine: &mut E, img: &GuestImage) -> (u64, RunOutcome) {
    let mut m = Machine::<Armlet, _>::boot(img, FlatRam::new(1 << 20));
    let before = allocs();
    let out = engine.run(&mut m, &RunLimits::insns(10_000_000));
    let delta = allocs() - before;
    (delta, out)
}

#[test]
fn warm_hot_loops_allocate_nothing() {
    let img = hot_loop_image(20_000);

    // Telemetry is compiled into both engines below, and its default-off
    // state is the precondition for every zero-allocation assertion
    // that follows.
    assert!(
        !simbench_obs::tracing_enabled() && !simbench_obs::metrics_enabled(),
        "obs must be disabled by default"
    );

    // Fast interpreter: decode results live inline in `Decoded`
    // (`OpList`), the fetch buffer is on the stack, and the per-run
    // single-entry caches are plain fields — even the *first* run of a
    // fresh engine must not allocate.
    let mut interp = Interp::<Armlet>::new();
    let (warm, out) = measured_run(&mut interp, &img);
    assert_eq!(out.exit, ExitReason::Halted);
    assert_eq!(
        warm, 0,
        "interp allocated {warm} times during a cold hot-loop run"
    );
    let (steady, out) = measured_run(&mut interp, &img);
    assert_eq!(out.exit, ExitReason::Halted);
    assert_eq!(steady, 0, "interp steady state allocated {steady} times");

    // DBT: the first run grows the step arena, block table, lookup maps
    // and the translation scratch buffer (warm-up may allocate). Every
    // later run retranslates the same program into that retained
    // capacity, so the steady state is allocation-free — including the
    // full re-translation after the run-start `flush_all`.
    let mut dbt = Dbt::<Armlet>::new();
    let (_warmup, out) = measured_run(&mut dbt, &img);
    assert_eq!(out.exit, ExitReason::Halted);
    let (steady, out) = measured_run(&mut dbt, &img);
    assert_eq!(out.exit, ExitReason::Halted);
    assert_eq!(
        steady, 0,
        "dbt steady state allocated {steady} times after warm-up"
    );
    assert!(
        out.counters.block_chain_follows > 10_000,
        "the loop must actually run via chained blocks: {}",
        out.counters.block_chain_follows
    );

    // Enabled telemetry: the first instrumented run pays one-time costs
    // (per-thread ring creation, metric registration in the process
    // registry), after which spans are fixed-slot ring writes and
    // metric updates are relaxed fetch_adds — the steady state stays
    // allocation-free even while recording.
    simbench_obs::set_tracing(true);
    simbench_obs::set_metrics(true);
    let (_warmup, out) = measured_run(&mut interp, &img);
    assert_eq!(out.exit, ExitReason::Halted);
    let (steady, out) = measured_run(&mut interp, &img);
    assert_eq!(out.exit, ExitReason::Halted);
    assert_eq!(
        steady, 0,
        "interp with telemetry enabled allocated {steady} times after warm-up"
    );
    let (_warmup, out) = measured_run(&mut dbt, &img);
    assert_eq!(out.exit, ExitReason::Halted);
    let (steady, out) = measured_run(&mut dbt, &img);
    assert_eq!(out.exit, ExitReason::Halted);
    assert_eq!(
        steady, 0,
        "dbt with telemetry enabled allocated {steady} times after warm-up"
    );
    simbench_obs::set_tracing(false);
    simbench_obs::set_metrics(false);

    // Back to disabled: the flags leave no residue in the hot loops.
    let (steady, out) = measured_run(&mut dbt, &img);
    assert_eq!(out.exit, ExitReason::Halted);
    assert_eq!(steady, 0, "dbt after disabling telemetry: {steady} allocs");
}

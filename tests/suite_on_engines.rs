//! Integration: every suite benchmark runs to completion on every engine
//! and both guest ISAs, producing the expected tested-operation counts.

use simbench::prelude::*;
use simbench_core::bus::Bus;
use simbench_core::engine::RunOutcome;
use simbench_core::isa::Isa;
use simbench_suite::{build, Benchmark, Support};

const ITERS: u32 = 64;

fn run_bench<I, S, E>(support: &S, engine: &mut E, bench: Benchmark) -> Option<RunOutcome>
where
    I: Isa,
    S: Support,
    E: Engine<I, Platform>,
{
    let image = build(support, bench, ITERS)?;
    let mut m = Machine::<I, Platform>::boot(&image, Platform::new());
    Some(engine.run(&mut m, &RunLimits::insns(50_000_000)))
}

fn check_outcome(bench: Benchmark, engine: &str, out: &RunOutcome) {
    if let ExitReason::Unsupported(_) = out.exit {
        // Allowed only for the detailed engine's unimplemented devices —
        // not exercised in this test (we run Detailed with all devices).
        panic!("{engine}/{bench:?}: unexpected Unsupported");
    }
    assert_eq!(
        out.exit,
        ExitReason::Halted,
        "{engine}/{bench:?} did not halt: {:?}",
        out.exit
    );
    let kernel = out
        .kernel
        .as_ref()
        .unwrap_or_else(|| panic!("{engine}/{bench:?}: no phase marks"));
    let ops = bench.tested_ops(&kernel.counters);
    if bench.category() == simbench_suite::Category::CodeGeneration && ops == 0 {
        // Engines without a code cache cannot observe code modification
        // events; the architectural rewrites must still have happened.
        assert!(
            kernel.counters.mem_writes >= ITERS as u64,
            "{engine}/{bench:?}: too few rewrite stores"
        );
        return;
    }
    assert!(
        ops >= ITERS as u64 / 2,
        "{engine}/{bench:?}: tested ops {} too low for {} iterations (counters: {:?})",
        ops,
        ITERS,
        kernel.counters
    );
}

#[test]
fn all_benchmarks_on_interp_armlet() {
    let s = ArmletSupport::new();
    for bench in Benchmark::ALL {
        let mut e = Interp::<Armlet>::new();
        let out = run_bench::<Armlet, _, _>(&s, &mut e, bench).unwrap();
        check_outcome(bench, "interp/armlet", &out);
    }
}

#[test]
fn all_benchmarks_on_dbt_armlet() {
    let s = ArmletSupport::new();
    for bench in Benchmark::ALL {
        let mut e = Dbt::<Armlet>::new();
        let out = run_bench::<Armlet, _, _>(&s, &mut e, bench).unwrap();
        check_outcome(bench, "dbt/armlet", &out);
    }
}

#[test]
fn all_benchmarks_on_native_armlet() {
    let s = ArmletSupport::new();
    for bench in Benchmark::ALL {
        let mut e = Virt::<Armlet>::native();
        let out = run_bench::<Armlet, _, _>(&s, &mut e, bench).unwrap();
        check_outcome(bench, "native/armlet", &out);
    }
}

#[test]
fn all_benchmarks_on_detailed_armlet() {
    let s = ArmletSupport::new();
    for bench in Benchmark::ALL {
        let mut e = Detailed::<Armlet>::new();
        let out = run_bench::<Armlet, _, _>(&s, &mut e, bench).unwrap();
        check_outcome(bench, "detailed/armlet", &out);
    }
}

#[test]
fn all_benchmarks_on_interp_petix() {
    let s = PetixSupport::new();
    for bench in Benchmark::ALL {
        if !bench.supported_on("petix") {
            continue;
        }
        let mut e = Interp::<Petix>::new();
        let out = run_bench::<Petix, _, _>(&s, &mut e, bench).unwrap();
        check_outcome(bench, "interp/petix", &out);
    }
}

#[test]
fn all_benchmarks_on_dbt_petix() {
    let s = PetixSupport::new();
    for bench in Benchmark::ALL {
        if !bench.supported_on("petix") {
            continue;
        }
        let mut e = Dbt::<Petix>::new();
        let out = run_bench::<Petix, _, _>(&s, &mut e, bench).unwrap();
        check_outcome(bench, "dbt/petix", &out);
    }
}

#[test]
fn engines_agree_on_guest_visible_state() {
    // Differential check: after running the same benchmark, the guest's
    // architectural registers must match across engines.
    let s = ArmletSupport::new();
    for bench in [
        Benchmark::MemHot,
        Benchmark::Syscall,
        Benchmark::IntraPageDirect,
    ] {
        let image = build(&s, bench, ITERS).unwrap();
        let mut finals = Vec::new();
        {
            let mut m = Machine::<Armlet, Platform>::boot(&image, Platform::new());
            let mut e = Interp::<Armlet>::new();
            e.run(&mut m, &RunLimits::default());
            finals.push(m.cpu.regs);
        }
        {
            let mut m = Machine::<Armlet, Platform>::boot(&image, Platform::new());
            let mut e = Dbt::<Armlet>::new();
            e.run(&mut m, &RunLimits::default());
            finals.push(m.cpu.regs);
        }
        {
            let mut m = Machine::<Armlet, Platform>::boot(&image, Platform::new());
            let mut e = Virt::<Armlet>::native();
            e.run(&mut m, &RunLimits::default());
            finals.push(m.cpu.regs);
        }
        assert_eq!(finals[0], finals[1], "{bench:?}: interp vs dbt");
        assert_eq!(finals[0], finals[2], "{bench:?}: interp vs native");
    }
}

#[test]
fn phase_marks_reach_platform() {
    let s = ArmletSupport::new();
    let image = build(&s, Benchmark::Syscall, 32).unwrap();
    let mut m = Machine::<Armlet, Platform>::boot(&image, Platform::new());
    let mut e = Interp::<Armlet>::new();
    let out = e.run(&mut m, &RunLimits::default());
    assert_eq!(out.exit, ExitReason::Halted);
    assert_eq!(m.bus.ctl.marks(), &[1, 2]);
    assert!(!m.bus.irq_pending());
}
